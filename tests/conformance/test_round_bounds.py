"""O(1)-round accounting on the conformance grid (paper Section 1.1).

Every top-level algorithm in the grid is an O(1)-round algorithm: the
number of ledger steps it performs must be bounded by a constant that
depends only on the query shape and ``p`` — never on the instance size.
Two checks enforce that:

* an absolute pinned bound per cell (a constant chosen ~1.5x above the
  observed count, so genuine regressions — a primitive sneaking a
  data-dependent loop of exchanges in — trip it while refactors that
  shuffle a handful of steps do not), and
* a no-growth check: doubling the instance must not increase the step
  count by more than a constant slack.

Note ``steps`` counts *ledger entries*, which is an upper bound on rounds:
independent exchanges that a real execution would merge into one round are
tallied separately (and group families tally once per member), so a
constant bound here is a strictly stronger claim than O(1) rounds.
"""

from __future__ import annotations

import pytest

from tests.conformance.conftest import GRID, reference_run

#: Pinned per-cell step ceilings (constants; see module docstring).
STEP_BOUNDS = {
    "binary/uniform/auto": 75,
    "binary/controlled/binhc": 55,
    "line3/uniform/line3": 225,
    "line3/trap/line3": 360,
    "line3/hard/acyclic": 260,
    "acyclic/uniform/acyclic": 400,
    "acyclic/uniform/yannakakis": 250,
    "rhier/skewed/rhierarchical": 420,
    "star/dangling/binhc-multiround": 100,
    "aggregate/uniform/groupby-count": 75,
    "aggregate/uniform/total-count": 35,
    "project/uniform/line3": 75,
}

#: Additive slack for the doubling check (heavy/light thresholds may
#: toggle a few sub-phase steps when degrees cross a power of two).
DOUBLING_SLACK = 8

CELL_IDS = [c.name for c in GRID]


def test_every_cell_has_a_pinned_bound():
    assert set(STEP_BOUNDS) == {c.name for c in GRID}


@pytest.mark.parametrize("cell", GRID, ids=CELL_IDS)
def test_steps_below_pinned_constant(cell):
    _out, ledger = reference_run(cell)
    bound = STEP_BOUNDS[cell.name]
    assert ledger["steps"] <= bound, (
        f"{cell.name}: {ledger['steps']} ledger steps exceed the pinned "
        f"O(1) bound {bound} — did a primitive grow a data-dependent "
        f"exchange loop?"
    )


@pytest.mark.parametrize("cell", GRID, ids=CELL_IDS)
def test_steps_do_not_grow_with_instance_size(cell):
    _o1, ledger1 = reference_run(cell, scale=1)
    _o2, ledger2 = reference_run(cell, scale=2)
    assert ledger2["steps"] <= ledger1["steps"] + DOUBLING_SLACK, (
        f"{cell.name}: steps grew from {ledger1['steps']} to "
        f"{ledger2['steps']} when IN doubled — not O(1) rounds"
    )
