"""Substrate cache invalidation under interleaved and worker-local use.

The substrate keeps three caches (key encodings, sorted runs, and — under
the multiprocess backend — worker-local memoized decorate+sort results).
These tests drive randomized *interleavings* of cached and cache-bypassed
primitive calls on every registered backend and demand that the bypassed
reference path and the cached path agree call-for-call on outputs and on
the final ledger, no matter the interleaving or the backend executing the
per-part work.

This is the property PR 1 established for the serial path, extended to
arbitrary schedules and to backends whose caches live in *other
processes*: a worker memo entry may only ever be a bit-identical stand-in
for recomputation, and ``cache_disabled()`` must bypass worker memos too.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.relation import Relation
from repro.mpc import Cluster, cache_disabled, distribute_relation
from repro.mpc.backends import available_backends
from repro.mpc.primitives import (
    attach_degrees,
    count_by_key,
    number_rows,
    semi_join,
)

#: The operations the schedule interleaves: (name, callable(group, rel, flt, step)).
OPS = (
    ("count_b", lambda g, rel, flt, i: count_by_key(g, rel, ("B",), f"c{i}")),
    ("count_a", lambda g, rel, flt, i: count_by_key(g, rel, ("A",), f"a{i}")),
    ("degrees", lambda g, rel, flt, i: attach_degrees(g, rel, ("B",), f"d{i}")),
    ("number", lambda g, rel, flt, i: number_rows(g, rel, ("A",), f"n{i}")),
    ("semijoin", lambda g, rel, flt, i: semi_join(g, rel, flt, f"s{i}").parts),
)


def _relations(n_rows: int):
    rows = [(i % 7, (i * 13) % 5) for i in range(n_rows)]
    rows += [(f"k{i % 3}", (i * 7) % 5) for i in range(n_rows // 3)]
    rel = Relation("R", ("A", "B"), rows)
    flt = Relation("F", ("B", "C"), [(b, 0) for b in range(0, 5, 2)])
    return rel, flt


def _execute(backend: str, schedule: tuple[tuple[int, bool], ...], n_rows: int):
    """Run a schedule of (op_index, bypass?) calls; collect outputs + ledger."""
    cluster = Cluster(4, backend=backend)
    group = cluster.root_group()
    rel_ram, flt_ram = _relations(n_rows)
    rel = distribute_relation(rel_ram, group)
    flt = distribute_relation(flt_ram, group)
    outputs = []
    for i, (op_idx, bypass) in enumerate(schedule):
        _name, op = OPS[op_idx % len(OPS)]
        if bypass:
            with cache_disabled():
                outputs.append(op(group, rel, flt, i))
        else:
            outputs.append(op(group, rel, flt, i))
    return outputs, cluster.snapshot().as_dict()


@pytest.mark.parametrize("backend", available_backends())
@settings(max_examples=15, deadline=None)
@given(
    schedule=st.lists(
        st.tuples(st.integers(0, len(OPS) - 1), st.booleans()),
        min_size=2,
        max_size=8,
    ).map(tuple),
)
def test_interleaved_cached_and_bypassed_calls_agree(backend, schedule):
    """Cached/bypassed interleavings return what an all-bypass run returns.

    The all-bypass schedule is the reference (every call recomputes from
    scratch); the drawn schedule mixes cache hits, misses, and bypasses in
    arbitrary order.  Outputs must match call-for-call and the final
    ledgers must be identical — the sorted-run cache replays its exact
    communication, so even `steps`/`by_label` cannot drift.
    """
    reference = tuple((op, True) for op, _ in schedule)
    ref_out, ref_ledger = _execute(backend, reference, n_rows=60)
    got_out, got_ledger = _execute(backend, schedule, n_rows=60)
    assert got_out == ref_out
    assert got_ledger == ref_ledger


@pytest.mark.parametrize("backend", available_backends())
def test_fresh_relation_same_content_is_not_stale(backend):
    """Content-identical but *fresh* relations must not see stale results.

    Worker-local memoization is content-addressed, so a fresh DistRelation
    with the same rows legitimately hits the memo — but a relation with
    *different* rows (same shape, same name) must never be served another
    relation's cached arrangement.
    """
    cluster = Cluster(4, backend=backend)
    group = cluster.root_group()
    rel_a = distribute_relation(
        Relation("R", ("A", "B"), [(i % 5, i % 3) for i in range(40)]), group
    )
    first = count_by_key(group, rel_a, ("B",), "warm")
    # Same content, fresh object: must equal the first result exactly.
    rel_b = distribute_relation(
        Relation("R", ("A", "B"), [(i % 5, i % 3) for i in range(40)]), group
    )
    assert count_by_key(group, rel_b, ("B",), "warm") == first
    # Different content, same name/schema/sizes: must differ accordingly.
    rel_c = distribute_relation(
        Relation("R", ("A", "B"), [(i % 5, (i + 1) % 3) for i in range(40)]),
        group,
    )
    shifted = count_by_key(group, rel_c, ("B",), "warm")
    flat_c = sorted(kv for part in shifted for kv in part)
    # The decisive check: totals per key match a direct recount.
    from collections import Counter

    expected = Counter(row[1] for part in rel_c.parts for row in part)
    got = {k[0]: c for k, c in flat_c}
    assert got == dict(expected)
