"""The differential conformance grid: queries x generators x backends.

Every registered execution backend must replay every grid cell with

* **bit-identical outputs** — not just the same row *set*: the same rows
  in the same order in the same per-server parts, and
* a **bit-identical load ledger** — ``load``, ``max_step_load``,
  ``steps``, per-server ``totals``, and the full ``by_label`` breakdown.

The serial backend is the reference; its run per cell is computed once and
cached for the whole session.  Adding a backend via
:func:`repro.mpc.backends.register_backend` automatically enrolls it here.

Set ``REPRO_CONFORMANCE=quick`` for the CI smoke variant (smaller
instances, same grid shape).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable

import pytest

from repro.core.runner import mpc_join, mpc_join_aggregate, mpc_join_project
from repro.data.generators import (
    add_dangling,
    binary_out_controlled,
    forest_instance,
    line_trap_instance,
    random_instance,
    star_instance,
)
from repro.data.hard_instances import line3_random_hard
from repro.mpc.backends import available_backends
from repro.query import catalog
from repro.semiring import COUNT

QUICK = os.environ.get("REPRO_CONFORMANCE", "").lower() == "quick"

#: All registered backends; the first is the serial reference.
BACKENDS = available_backends()
REFERENCE = "serial"
CHALLENGERS = tuple(b for b in BACKENDS if b != REFERENCE)


def _n(full: int, quick: int) -> int:
    return quick if QUICK else full


@dataclass(frozen=True)
class Cell:
    """One grid point: a query + generator + algorithm + server count.

    ``build(scale)`` regenerates the instance at a size multiplier (the
    round-bound tests compare ``scale=1`` against ``scale=2``).
    """

    name: str
    kind: str  # "join" | "aggregate" | "project"
    p: int
    build: Callable[[int], tuple]  # scale -> (query, instance, extra)

    def run(self, backend: str, scale: int = 1) -> tuple[Any, dict]:
        """Execute on a backend; return (canonical outputs, ledger dict)."""
        query, instance, extra = self.build(scale)
        if self.kind == "join":
            res = mpc_join(
                query, instance, p=self.p, algorithm=extra, backend=backend
            )
            payload = {
                "attrs": res.relation.attrs,
                "parts": [list(part) for part in res.relation.parts],
                "out": res.meta["out_size"],
            }
            return payload, res.report.as_dict()
        if self.kind == "aggregate":
            output_attrs, semiring = extra
            annotated = instance.with_uniform_annotations(semiring)
            res = mpc_join_aggregate(
                query, output_attrs, annotated, semiring, p=self.p,
                backend=backend,
            )
            payload = {
                "scalar": res.scalar,
                "rows": None if res.relation is None else list(res.relation.rows),
                "annotations": (
                    None if res.relation is None
                    else list(res.relation.annotations or ())
                ),
            }
            return payload, res.report.as_dict()
        if self.kind == "project":
            res = mpc_join_project(
                query, extra, instance, p=self.p, backend=backend
            )
            payload = {
                "rows": list(res.relation.rows),
                "attrs": res.relation.attrs,
            }
            return payload, res.report.as_dict()
        raise AssertionError(f"unknown cell kind {self.kind!r}")


def _join(name: str, p: int, algorithm: str, make) -> Cell:
    return Cell(name, "join", p, lambda s: (*make(s), algorithm))


# ----------------------------------------------------------------------
# The grid.  Generators cover uniform, skewed, dangling-heavy, and the
# paper's hard instances; queries cover binary, line-3, general acyclic,
# BinHC's degree-bucketed one-round path, and join-aggregates.
# ----------------------------------------------------------------------

def _binary_uniform(s):
    q = catalog.binary_join()
    return q, random_instance(q, _n(500, 120) * s, 25, seed=7)


def _binary_controlled(s):
    inst = binary_out_controlled(_n(600, 150) * s, _n(2400, 500) * s)
    return inst.query, inst


def _line3_uniform(s):
    q = catalog.line3()
    return q, random_instance(q, _n(300, 90) * s, 12, seed=11)


def _line3_trap(s):
    inst = line_trap_instance(3, _n(600, 150) * s, _n(3600, 800) * s, doubled=True)
    return inst.query, inst


def _line3_random_hard(s):
    inst = line3_random_hard(_n(600, 180) * s, _n(1800, 540) * s, seed=13)
    return inst.query, inst


def _fork_uniform(s):
    q = catalog.fork_join()
    return q, random_instance(q, _n(220, 70) * s, 8, seed=17)


def _rhier_skewed(s):
    q = catalog.q2_hierarchical()
    return q, forest_instance(q, fanout=2 * s, skew=3.0)


def _star_dangling(s):
    inst = add_dangling(star_instance(3, 4 * s, 4), _n(60, 20) * s, seed=19)
    return inst.query, inst


def _agg_line3(s):
    q = catalog.line3()
    return q, random_instance(q, _n(260, 80) * s, 10, seed=23), (("B",), COUNT)


def _agg_total(s):
    q = catalog.binary_join()
    return q, random_instance(q, _n(400, 110) * s, 18, seed=29), ((), COUNT)


def _project_line3(s):
    q = catalog.line3()
    return q, random_instance(q, _n(260, 80) * s, 10, seed=31), ("A", "B")


GRID: tuple[Cell, ...] = (
    _join("binary/uniform/auto", 8, "auto", _binary_uniform),
    _join("binary/controlled/binhc", 8, "binhc", _binary_controlled),
    _join("line3/uniform/line3", 8, "line3", _line3_uniform),
    _join("line3/trap/line3", 8, "line3", _line3_trap),
    _join("line3/hard/acyclic", 6, "acyclic", _line3_random_hard),
    _join("acyclic/uniform/acyclic", 8, "acyclic", _fork_uniform),
    _join("acyclic/uniform/yannakakis", 5, "yannakakis", _fork_uniform),
    _join("rhier/skewed/rhierarchical", 8, "rhierarchical", _rhier_skewed),
    _join("star/dangling/binhc-multiround", 8, "binhc-multiround", _star_dangling),
    Cell("aggregate/uniform/groupby-count", "aggregate", 8, _agg_line3),
    Cell("aggregate/uniform/total-count", "aggregate", 8, _agg_total),
    Cell("project/uniform/line3", "project", 8, _project_line3),
)

_REFERENCE_CACHE: dict[tuple[str, int], tuple[Any, dict]] = {}


def reference_run(cell: Cell, scale: int = 1) -> tuple[Any, dict]:
    """The serial-backend run for a cell, computed once per session."""
    key = (cell.name, scale)
    if key not in _REFERENCE_CACHE:
        _REFERENCE_CACHE[key] = cell.run(REFERENCE, scale)
    return _REFERENCE_CACHE[key]


def ledger_diff(ref: dict, got: dict) -> str:
    """Human-readable field-by-field delta of two LoadReport dicts."""
    lines = []
    for field in sorted(set(ref) | set(got)):
        r, g = ref.get(field), got.get(field)
        if r == g:
            continue
        if field == "by_label" and isinstance(r, dict) and isinstance(g, dict):
            for label in sorted(set(r) | set(g)):
                if r.get(label) != g.get(label):
                    lines.append(
                        f"  by_label[{label!r}]: ref={r.get(label)} got={g.get(label)}"
                    )
        else:
            lines.append(f"  {field}: ref={r} got={g}")
    return "\n".join(lines) or "  (no differing fields)"


@pytest.fixture(params=BACKENDS)
def backend(request) -> str:
    return request.param


@pytest.fixture(params=CHALLENGERS)
def challenger(request) -> str:
    return request.param


def pytest_sessionfinish(session, exitstatus):  # noqa: ARG001
    """Tear down shared worker pools so pytest exits promptly."""
    from repro.mpc.backends import shutdown_backends

    shutdown_backends()
