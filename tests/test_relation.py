"""Tests for schema-carrying relations."""

import pytest

from repro.data.relation import Relation, project_row
from repro.errors import SchemaError
from repro.semiring import COUNT, MIN_TROPICAL


class TestConstruction:
    def test_basic(self):
        r = Relation("R", ("A", "B"), [(1, 2), (3, 4)])
        assert len(r) == 2
        assert (1, 2) in r

    def test_deduplication(self):
        r = Relation("R", ("A",), [(1,), (1,), (2,)])
        assert len(r) == 2

    def test_arity_mismatch_raises(self):
        with pytest.raises(SchemaError):
            Relation("R", ("A", "B"), [(1,)])

    def test_duplicate_attrs_raise(self):
        with pytest.raises(SchemaError):
            Relation("R", ("A", "A"), [])

    def test_annotations_need_semiring(self):
        with pytest.raises(SchemaError):
            Relation("R", ("A",), [(1,)], annotations=[1])

    def test_annotation_length_mismatch(self):
        with pytest.raises(SchemaError):
            Relation("R", ("A",), [(1,)], annotations=[1, 2], semiring=COUNT)

    def test_duplicate_rows_combine_annotations(self):
        r = Relation("R", ("A",), [(1,), (1,)], annotations=[2, 3], semiring=COUNT)
        assert len(r) == 1
        assert r.annotation_map()[(1,)] == 5

    def test_duplicate_rows_combine_with_min(self):
        r = Relation(
            "R", ("A",), [(1,), (1,)], annotations=[2.0, 3.0], semiring=MIN_TROPICAL
        )
        assert r.annotation_map()[(1,)] == 2.0


class TestOperations:
    def test_project(self):
        r = Relation("R", ("A", "B"), [(1, 2), (1, 3)])
        p = r.project(("A",))
        assert set(p.rows) == {(1,)}

    def test_project_annotated_combines(self):
        r = Relation(
            "R", ("A", "B"), [(1, 2), (1, 3)], annotations=[1, 1], semiring=COUNT
        )
        p = r.project(("A",))
        assert p.annotation_map()[(1,)] == 2

    def test_project_missing_attr_raises(self):
        with pytest.raises(SchemaError):
            Relation("R", ("A",), [(1,)]).project(("B",))

    def test_select(self):
        r = Relation("R", ("A", "B"), [(1, 2), (3, 4)])
        s = r.select(lambda t: t["A"] == 1)
        assert set(s.rows) == {(1, 2)}

    def test_restrict(self):
        r = Relation("R", ("A", "B"), [(1, 2), (3, 4), (5, 6)])
        s = r.restrict({(1,), (5,)}, ("A",))
        assert set(s.rows) == {(1, 2), (5, 6)}

    def test_reordered(self):
        r = Relation("R", ("A", "B"), [(1, 2)])
        s = r.reordered(("B", "A"))
        assert s.rows == ((2, 1),)
        assert s.attrs == ("B", "A")

    def test_reorder_wrong_attrs_raises(self):
        with pytest.raises(SchemaError):
            Relation("R", ("A",), [(1,)]).reordered(("B",))

    def test_equality_ignores_column_order(self):
        r1 = Relation("R", ("A", "B"), [(1, 2)])
        r2 = Relation("R", ("B", "A"), [(2, 1)])
        assert r1 == r2

    def test_degrees(self):
        r = Relation("R", ("A", "B"), [(1, 2), (1, 3), (4, 5)])
        assert r.degrees(("A",)) == {(1,): 2, (4,): 1}

    def test_with_annotations_uniform(self):
        r = Relation("R", ("A",), [(1,), (2,)]).with_annotations(COUNT)
        assert r.annotated
        assert set(r.annotations) == {1}

    def test_annotation_map_requires_annotations(self):
        with pytest.raises(SchemaError):
            Relation("R", ("A",), [(1,)]).annotation_map()

    def test_project_row(self):
        assert project_row((10, 20, 30), (2, 0)) == (30, 10)
