"""Tests for workload generators: IN/OUT targets and structure."""

import pytest

from repro.data.generators import (
    add_dangling,
    binary_out_controlled,
    cartesian_instance,
    forest_instance,
    line_trap_instance,
    matching_instance,
    random_instance,
    star_instance,
)
from repro.errors import InstanceError
from repro.query import catalog
from repro.ram.yannakakis import join_size


class TestMatching:
    def test_out_equals_n(self):
        for n in (1, 10, 50):
            inst = matching_instance(catalog.line3(), n)
            assert join_size(inst) == n

    def test_works_on_any_query(self):
        inst = matching_instance(catalog.q1_tall_flat(), 5)
        assert join_size(inst) == 5


class TestRandom:
    def test_deterministic_per_seed(self):
        a = random_instance(catalog.line3(), 30, 5, seed=7)
        b = random_instance(catalog.line3(), 30, 5, seed=7)
        assert all(set(a[n].rows) == set(b[n].rows) for n in a)

    def test_seed_changes_instance(self):
        a = random_instance(catalog.line3(), 30, 5, seed=1)
        b = random_instance(catalog.line3(), 30, 5, seed=2)
        assert any(set(a[n].rows) != set(b[n].rows) for n in a)

    def test_per_relation_sizes(self):
        inst = random_instance(
            catalog.binary_join(), {"R1": 10, "R2": 20}, 100, seed=0
        )
        # Sampling with replacement dedupes, so sizes are upper bounds.
        assert len(inst["R1"]) <= 10 and len(inst["R2"]) <= 20


class TestForest:
    def test_out_is_product_of_fanouts(self):
        inst = forest_instance(catalog.q2_hierarchical(), 2)
        assert join_size(inst) == 2 ** 5

    def test_per_attr_fanouts(self):
        fan = {"Z": 4, "X1": 2, "X2": 3}
        inst = forest_instance(catalog.star_join(2), fan)
        assert join_size(inst) == 4 * 2 * 3

    def test_dangling_free(self):
        inst = forest_instance(catalog.q1_tall_flat(), 2)
        assert inst.is_dangling_free()

    def test_skew_increases_root_degree(self):
        smooth = forest_instance(catalog.star_join(2), 4, skew=1.0)
        skewed = forest_instance(catalog.star_join(2), 4, skew=8.0)
        assert skewed["R1"].degrees(("Z",)) != smooth["R1"].degrees(("Z",))
        assert max(skewed["R1"].degrees(("Z",)).values()) > max(
            smooth["R1"].degrees(("Z",)).values()
        )

    def test_non_hierarchical_raises(self):
        with pytest.raises(InstanceError):
            forest_instance(catalog.line3(), 2)


class TestLineTrap:
    def test_in_out_targets(self):
        inst = line_trap_instance(3, 3000, 30000)
        assert abs(inst.input_size - 3000) / 3000 < 0.2
        assert abs(join_size(inst) - 30000) / 30000 < 0.2

    def test_intermediate_asymmetry(self):
        """R1 x R2 is OUT-sized while R2 x R3 stays linear (Figure 3)."""
        from repro.ram.joins import natural_join

        inst = line_trap_instance(3, 1200, 12000, direction="forward")
        r12 = natural_join(inst["R1"], inst["R2"])
        r23 = natural_join(inst["R2"], inst["R3"])
        assert len(r12) >= 5 * len(r23)

    def test_backward_mirrors(self):
        fwd = line_trap_instance(3, 1200, 6000, direction="forward")
        bwd = line_trap_instance(3, 1200, 6000, direction="backward")
        assert join_size(fwd) == join_size(bwd)

    def test_doubled_has_both_directions(self):
        inst = line_trap_instance(3, 1200, 6000, doubled=True)
        assert join_size(inst) == 2 * join_size(line_trap_instance(3, 1200, 6000))

    def test_longer_chains(self):
        inst = line_trap_instance(5, 2000, 10000)
        assert join_size(inst) > 0
        assert len(inst.query.edge_names) == 5

    def test_out_range_validated(self):
        with pytest.raises(InstanceError):
            line_trap_instance(3, 300, 300000000)

    def test_dangling_free(self):
        assert line_trap_instance(3, 900, 9000).is_dangling_free()


class TestOthers:
    def test_binary_out_controlled(self):
        inst = binary_out_controlled(1000, 10000)
        assert abs(join_size(inst) - 10000) / 10000 < 0.5

    def test_cartesian_sizes(self):
        inst = cartesian_instance([5, 6, 7])
        assert join_size(inst) == 5 * 6 * 7

    def test_star_out(self):
        inst = star_instance(3, 4, 5)
        assert join_size(inst) == 4 * 5 ** 3

    def test_add_dangling_preserves_out(self):
        base = star_instance(2, 3, 2)
        dirty = add_dangling(base, 10, seed=3)
        assert join_size(dirty) == join_size(base)
        assert dirty.input_size == base.input_size + 10 * len(base.relations)
