"""Unit tests for the execution-backend layer (registry, seam, workers)."""

from __future__ import annotations

import pytest

from repro.data.relation import Relation
from repro.errors import MPCError
from repro.mpc import Cluster, distribute_relation
from repro.mpc.backends import (
    Backend,
    MultiprocessBackend,
    SerialBackend,
    available_backends,
    deliver_local,
    get_backend,
    register_backend,
)
from repro.mpc.backends import _FACTORIES, _SHARED  # type: ignore[attr-defined]


# ----------------------------------------------------------------------
# Module-level map_parts functions (worker processes import them by name).
# ----------------------------------------------------------------------

def _sum_part(part, common, idx):
    return (idx, common, sum(v for row in part for v in row))


def _sort_part(part, common, idx):  # noqa: ARG001
    return sorted(part)


def _boom(part, common, idx):  # noqa: ARG001
    raise ValueError("intentional failure")


def _len_part(part, common, idx):  # noqa: ARG001
    return len(part)


def _boom_on_idx0(part, common, idx):  # noqa: ARG001
    if idx == 0:
        raise ValueError("boom-on-zero")
    return sorted(part)


class _Unpicklable:
    def __reduce__(self):
        raise TypeError("cannot pickle this")


@pytest.fixture
def mp_backend():
    backend = MultiprocessBackend(workers=2)
    yield backend
    backend.close()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

class TestRegistry:
    def test_serial_is_first_and_both_builtins_present(self):
        names = available_backends()
        assert names[0] == "serial"
        assert "multiprocess" in names

    def test_name_lookup_returns_shared_instance(self):
        assert get_backend("serial") is get_backend("serial")

    def test_instance_passthrough(self):
        inst = SerialBackend()
        assert get_backend(inst) is inst

    def test_unknown_name_raises(self):
        with pytest.raises(MPCError, match="unknown backend"):
            get_backend("definitely-not-registered")

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "multiprocess")
        assert get_backend(None).name == "multiprocess"
        monkeypatch.delenv("REPRO_BACKEND")
        assert get_backend(None).name == "serial"

    def test_register_custom_backend(self):
        class Echo(SerialBackend):
            name = "echo-test"

        register_backend("echo-test", Echo)
        try:
            assert "echo-test" in available_backends()
            assert get_backend("echo-test").name == "echo-test"
        finally:
            _FACTORIES.pop("echo-test", None)
            _SHARED.pop("echo-test", None)

    def test_cluster_resolves_backend_by_name(self):
        from repro.mpc.backends import default_backend_name

        assert Cluster(2, backend="serial").backend.name == "serial"
        assert Cluster(2).backend.name == default_backend_name()


# ----------------------------------------------------------------------
# Exchange delivery
# ----------------------------------------------------------------------

OUTBOXES = [
    [(1, "a"), (0, "self"), (2, "b")],
    [(0, "c")],
    [],
    [(2, "d"), (2, "e")],
]


class TestExchange:
    def test_reference_delivery_counts(self):
        inboxes, counts = deliver_local(OUTBOXES, 4, count_self=False)
        assert inboxes == [["self", "c"], ["a"], ["b", "d", "e"], []]
        assert counts == [1, 1, 3, 0]  # self-message at 0 is free

    def test_count_self(self):
        _inboxes, counts = deliver_local(OUTBOXES, 4, count_self=True)
        assert counts == [2, 1, 3, 0]

    @pytest.mark.parametrize("name", available_backends())
    def test_backends_agree_with_reference(self, name):
        backend = get_backend(name)
        assert backend.exchange(OUTBOXES, 4, False) == deliver_local(
            OUTBOXES, 4, False
        )

    def test_bad_destination_raises(self):
        with pytest.raises(MPCError, match="out of range"):
            deliver_local([[(7, "x")]], 4, False)


# ----------------------------------------------------------------------
# map_parts
# ----------------------------------------------------------------------

PARTS = [[(1, 2), (3, 4)], [(5, 6)], [], [(7, 8), (9, 10), (11, 12)]]


class TestMapParts:
    def test_serial_applies_in_order(self):
        got = SerialBackend().map_parts(_sum_part, PARTS, common="c")
        assert got == [(0, "c", 10), (1, "c", 11), (2, "c", 0), (3, "c", 57)]

    def test_multiprocess_matches_serial(self, mp_backend):
        assert mp_backend.map_parts(_sum_part, PARTS, common="c") == (
            SerialBackend().map_parts(_sum_part, PARTS, common="c")
        )

    def test_multiprocess_rejects_non_module_functions(self, mp_backend):
        with pytest.raises(MPCError, match="module-level"):
            mp_backend.map_parts(lambda p, c, i: p, PARTS)

    def test_worker_exception_propagates(self, mp_backend):
        with pytest.raises(MPCError, match="intentional failure"):
            mp_backend.map_parts(_boom, PARTS)

    def test_worker_survives_a_failed_batch(self, mp_backend):
        with pytest.raises(MPCError):
            mp_backend.map_parts(_boom, PARTS)
        assert mp_backend.map_parts(_sort_part, [[3, 1, 2]]) == [[1, 2, 3]]

    def test_error_in_one_worker_does_not_leave_stale_replies(self, mp_backend):
        """Regression: one worker failing while another succeeds must not
        leave the successful worker's reply in the pipe — the next call
        would silently return the *previous* batch's results."""
        # Worker 0 (part index 0) raises; worker 1 (part index 1) succeeds.
        with pytest.raises(MPCError, match="boom-on-zero"):
            mp_backend.map_parts(_boom_on_idx0, [[1, 2], [10, 20, 30]])
        # Both workers must now serve fresh, correct results.
        got = mp_backend.map_parts(_sort_part, [[5, 4], [100, 99]])
        assert got == [[4, 5], [99, 100]]

    def test_mirror_desync_recovers_via_miss_retry(self, mp_backend):
        """A key-only job the worker no longer holds is re-sent with its
        part, not turned into an error (the mirror is best-effort)."""
        import pickle
        from hashlib import blake2b

        class Owner:
            def __init__(self):
                self._substrate = {}

        parts = [[(3, 1)], [(2, 9)]]
        # Poison the coordinator mirror: claim the worker has these keys
        # cached even though it has never seen them.
        fn_ref = f"{_sort_part.__module__}:{_sort_part.__qualname__}"
        common_bytes = pickle.dumps(None, pickle.HIGHEST_PROTOCOL)
        mp_backend.map_parts(_len_part, [[0]] * 2)  # start the pool
        w = len(mp_backend._conns)
        for idx, part in enumerate(parts):
            fp = blake2b(
                pickle.dumps(part, pickle.HIGHEST_PROTOCOL), digest_size=16
            ).digest()
            key = (fn_ref, common_bytes, fp, idx)
            mp_backend._mirrors[idx % w][key] = None
        got = mp_backend.map_parts(_sort_part, parts, owner=Owner())
        assert got == [[(3, 1)], [(2, 9)]]

    def test_unpicklable_parts_fall_back_inline(self, mp_backend):
        # Rows that refuse to pickle must still compute (inline fallback).
        parts = [[(_Unpicklable(), 1)], []]
        assert mp_backend.map_parts(_len_part, parts) == [1, 0]

    def test_unpicklable_common_falls_back_inline(self, mp_backend):
        # A lambda as `common` cannot be pickled -> inline execution path.
        got = mp_backend.map_parts(_sort_part, [[2, 1]], common=lambda: None)
        assert got == [[1, 2]]

    def test_memoization_is_content_addressed(self, mp_backend):
        class Owner:
            def __init__(self):
                self._substrate = {}

        a, b = Owner(), Owner()
        first = mp_backend.map_parts(_sort_part, PARTS, owner=a)
        warm_same_owner = mp_backend.map_parts(_sort_part, PARTS, owner=a)
        warm_fresh_owner = mp_backend.map_parts(
            _sort_part, [list(p) for p in PARTS], owner=b
        )
        assert first == warm_same_owner == warm_fresh_owner
        # Different content under the same shapes must re-compute.
        changed = [[(99, 99)], *[list(p) for p in PARTS[1:]]]

        class Fresh:
            _substrate: dict = {}

        got = mp_backend.map_parts(_sort_part, changed, owner=Fresh())
        assert got[0] == [(99, 99)]

    def test_group_map_parts_checks_size(self):
        group = Cluster(4, backend="serial").root_group()
        with pytest.raises(MPCError, match="expected 4 parts"):
            group.map_parts(_sort_part, [[1], [2]])

    def test_group_map_parts_runs_through_backend(self):
        group = Cluster(2, backend="serial").root_group()
        assert group.map_parts(_sort_part, [[2, 1], [4, 3]]) == [[1, 2], [3, 4]]


# ----------------------------------------------------------------------
# End-to-end: the seam carries a real primitive identically
# ----------------------------------------------------------------------

class TestEndToEnd:
    def test_full_primitive_parity_across_backends(self):
        from repro.mpc.primitives import attach_degrees

        rel_ram = Relation(
            "R", ("A", "B"), [((i * 7) % 13, i % 5) for i in range(200)]
        )
        results = {}
        for name in available_backends():
            cluster = Cluster(8, backend=name)
            group = cluster.root_group()
            rel = distribute_relation(rel_ram, group)
            results[name] = (
                attach_degrees(group, rel, ("B",), "deg"),
                cluster.snapshot().as_dict(),
            )
        ref = results.pop("serial")
        for name, got in results.items():
            assert got == ref, f"backend {name} diverged from serial"

    def test_mpc_join_meta_records_backend(self):
        from repro.core.runner import mpc_join
        from repro.data.generators import matching_instance
        from repro.query import catalog

        inst = matching_instance(catalog.line3(), 30)
        res = mpc_join(inst.query, inst, p=4, backend="serial")
        assert res.meta["backend"] == "serial"


# ----------------------------------------------------------------------
# LoadReport ergonomics (conformance failure readability)
# ----------------------------------------------------------------------

class TestLoadReport:
    def _report(self):
        cluster = Cluster(4)
        cluster.tally([0, 1, 2], [5, 3, 2], "phase/a")
        cluster.tally([1, 3], [4, 1], "phase/b")
        return cluster.snapshot()

    def test_average_is_true_division(self):
        report = self._report()
        assert report.average == pytest.approx(15 / 4)
        assert isinstance(report.average, float)

    def test_as_dict_round_trips_every_field(self):
        report = self._report()
        d = report.as_dict()
        assert d["p"] == 4
        assert d["load"] == report.load == 7
        assert d["max_step_load"] == report.max_step_load == 5
        assert d["steps"] == report.steps == 2
        assert d["totals"] == [5, 7, 2, 1]
        assert d["by_label"] == {"phase/a": 10, "phase/b": 5}
        assert d["total"] == 15
        assert d["average"] == pytest.approx(3.75)
        import json

        json.dumps(d)  # must be JSON-serializable for bench/CI artifacts

    def test_str_is_the_summary(self):
        report = self._report()
        assert str(report) == report.summary()
        assert "load=7" in str(report)


# ----------------------------------------------------------------------
# Lifecycle and async dispatch
# ----------------------------------------------------------------------

class TestLifecycle:
    def test_close_unregisters_atexit_callback(self):
        """Regression: close() used to leave its atexit registration
        behind, so every create/close cycle kept the closed backend (and
        its pipes/mirrors) alive for the life of the process.  The
        registration holds a bound method, so liveness is the observable:
        once close() has unregistered, nothing pins the instance.
        (atexit._ncallbacks() cannot see this — unregistered slots are
        NULLed in place, never removed from the count.)"""
        import gc
        import weakref

        backend = MultiprocessBackend(workers=2)
        backend.map_parts(_len_part, [[1], [2]])  # starts the pool
        backend.close()
        ref = weakref.ref(backend)
        del backend
        gc.collect()
        assert ref() is None, "closed backend still referenced (atexit leak)"

    def test_close_terminates_all_workers(self):
        backend = MultiprocessBackend(workers=2)
        backend.map_parts(_len_part, [[1], [2]])
        procs = list(backend._procs)
        assert procs and all(p.is_alive() for p in procs)
        backend.close()
        for p in procs:
            p.join(timeout=5)
        assert not any(p.is_alive() for p in procs)
        backend.close()  # idempotent


class TestSubmitOps:
    def test_results_match_run_ops_in_submission_order(self, mp_backend):
        batches = [
            [(_sort_part, [[3, 1], [2]], None, None)],
            [(_len_part, [[1, 2, 3], []], None, None)],
            [(_sort_part, [[9, 8, 7]], None, None)],
        ]
        futures = [mp_backend.submit_ops(b) for b in batches]
        got = [f.result(timeout=30) for f in futures]
        assert got == [
            [[[1, 3], [2]]],
            [[3, 0]],
            [[[7, 8, 9]]],
        ]

    def test_collect_false_returns_none_entries(self, mp_backend):
        fut = mp_backend.submit_ops(
            [(_sort_part, [[2, 1]], None, None)], collect=False
        )
        res = fut.result(timeout=30)
        assert len(res) == 1 and res[0] in (None, [None])

    def test_errors_surface_on_the_future(self, mp_backend):
        fut = mp_backend.submit_ops([(_boom, [[1]], None, None)])
        with pytest.raises(MPCError, match="intentional failure"):
            fut.result(timeout=30)
        # The dispatcher thread survives a failed batch.
        ok = mp_backend.submit_ops([(_sort_part, [[5, 4]], None, None)])
        assert ok.result(timeout=30) == [[[4, 5]]]

    def test_serial_backend_supports_submit_ops(self):
        fut = SerialBackend().submit_ops([(_len_part, [[1], []], None, None)])
        assert fut.result(timeout=30) == [[1, 0]]
