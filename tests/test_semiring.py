"""Semiring law tests (paper Section 6 prerequisites)."""

import pytest

from repro.semiring.semirings import (
    ALL_SEMIRINGS,
    BOOLEAN,
    COUNT,
    MAX_TROPICAL,
    MIN_TROPICAL,
    SUM_PRODUCT,
)

SAMPLES = {
    "count": [0, 1, 2, 5, 7],
    "sum_product": [0.0, 1.0, 2.5, -3.0],
    "min_tropical": [0.0, 1.5, 7.0, float("inf")],
    "max_tropical": [0.0, 1.5, 7.0, float("-inf")],
    "boolean": [True, False],
}


@pytest.mark.parametrize("sr", ALL_SEMIRINGS, ids=lambda s: s.name)
class TestSemiringLaws:
    def test_plus_identity(self, sr):
        for a in SAMPLES[sr.name]:
            assert sr.plus(sr.zero, a) == a
            assert sr.plus(a, sr.zero) == a

    def test_times_identity(self, sr):
        for a in SAMPLES[sr.name]:
            assert sr.times(sr.one, a) == a
            assert sr.times(a, sr.one) == a

    def test_zero_annihilates(self, sr):
        for a in SAMPLES[sr.name]:
            assert sr.times(sr.zero, a) == sr.zero

    def test_plus_commutative(self, sr):
        vals = SAMPLES[sr.name]
        for a in vals:
            for b in vals:
                assert sr.plus(a, b) == sr.plus(b, a)

    def test_times_commutative(self, sr):
        vals = SAMPLES[sr.name]
        for a in vals:
            for b in vals:
                assert sr.times(a, b) == sr.times(b, a)

    def test_plus_associative(self, sr):
        vals = SAMPLES[sr.name][:3]
        for a in vals:
            for b in vals:
                for c in vals:
                    assert sr.plus(sr.plus(a, b), c) == sr.plus(a, sr.plus(b, c))

    def test_distributivity(self, sr):
        vals = [v for v in SAMPLES[sr.name][:3]]
        for a in vals:
            for b in vals:
                for c in vals:
                    left = sr.times(a, sr.plus(b, c))
                    right = sr.plus(sr.times(a, b), sr.times(a, c))
                    assert left == right


class TestFolds:
    def test_plus_all(self):
        assert COUNT.plus_all([1, 2, 3]) == 6
        assert COUNT.plus_all([]) == 0

    def test_times_all(self):
        assert COUNT.times_all([2, 3, 4]) == 24
        assert COUNT.times_all([]) == 1

    def test_min_tropical_semantics(self):
        """min-plus: plus picks minima, times adds costs."""
        assert MIN_TROPICAL.plus(3.0, 5.0) == 3.0
        assert MIN_TROPICAL.times(3.0, 5.0) == 8.0

    def test_max_tropical_semantics(self):
        assert MAX_TROPICAL.plus(3.0, 5.0) == 5.0
        assert MAX_TROPICAL.times(3.0, 5.0) == 8.0

    def test_boolean_semantics(self):
        assert BOOLEAN.plus(False, True) is True
        assert BOOLEAN.times(False, True) is False

    def test_sum_product(self):
        assert SUM_PRODUCT.plus_all([0.5, 1.5]) == 2.0
        assert SUM_PRODUCT.times_all([2.0, 3.0]) == 6.0
