"""Property tests over *generated* query shapes (beyond the catalog).

Random acyclic queries are built edge-by-edge along a random join tree
(each new edge shares a random subset of an existing edge plus fresh
attributes — the construction is acyclic by ear decomposition).  Random
hierarchical queries are built from random attribute forests (edges =
root-to-leaf paths).  Every algorithm must agree with the oracle on every
generated shape.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.acyclic import acyclic_join
from repro.core.binhc import binhc_join
from repro.core.rhierarchical import rhierarchical_join
from repro.core.runner import mpc_join
from repro.core.yannakakis import yannakakis_mpc
from repro.data.instance import Instance
from repro.data.relation import Relation
from repro.mpc import Cluster, distribute_instance
from repro.query.classify import classify, is_hierarchical, is_r_hierarchical, JoinClass
from repro.query.hypergraph import Hypergraph
from repro.ram.yannakakis import yannakakis

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def acyclic_queries(draw):
    """Random acyclic hypergraph grown along a join tree."""
    n_edges = draw(st.integers(2, 5))
    counter = [0]

    def fresh(k: int) -> list[str]:
        out = [f"x{counter[0] + i}" for i in range(k)]
        counter[0] += k
        return out

    edges: dict[str, frozenset[str]] = {
        "R0": frozenset(fresh(draw(st.integers(1, 3))))
    }
    for i in range(1, n_edges):
        parent = draw(st.sampled_from(sorted(edges)))
        parent_attrs = sorted(edges[parent])
        k_shared = draw(st.integers(0, len(parent_attrs)))
        shared = parent_attrs[:k_shared]
        new = fresh(draw(st.integers(0 if shared else 1, 2)))
        attrs = frozenset(shared + new)
        if not attrs:
            attrs = frozenset(fresh(1))
        edges[f"R{i}"] = attrs
    return Hypergraph(edges, name="grown")


@st.composite
def hierarchical_queries(draw):
    """Random hierarchical hypergraph from a random attribute forest."""
    n_attrs = draw(st.integers(2, 6))
    parent: dict[int, int | None] = {0: None}
    for i in range(1, n_attrs):
        parent[i] = draw(st.integers(-1, i - 1))
        if parent[i] == -1:
            parent[i] = None

    def path(i: int) -> list[str]:
        out = []
        cur: int | None = i
        while cur is not None:
            out.append(f"x{cur}")
            cur = parent[cur]
        return out

    leaves = [i for i in range(n_attrs) if i not in {p for p in parent.values()}]
    if not leaves:
        leaves = [n_attrs - 1]
    edges = {f"R{j}": tuple(path(i)) for j, i in enumerate(leaves)}
    return Hypergraph(edges, name="forest-grown")


@st.composite
def instance_for(draw, query: Hypergraph):
    dom = draw(st.integers(1, 4))
    rels = {}
    for edge in query.edge_names:
        attrs = tuple(sorted(query.attrs_of(edge)))
        n_rows = draw(st.integers(0, 10))
        rows = [
            tuple(draw(st.integers(0, dom)) for _ in attrs)
            for _ in range(n_rows)
        ]
        rels[edge] = Relation(edge, attrs, rows)
    return Instance(query, rels)


def run(inst, fn, p=4, **kw):
    cl = Cluster(p)
    g = cl.root_group()
    res = fn(g, inst.query, distribute_instance(inst, g), **kw)
    return set(res.all_rows())


class TestGrownAcyclic:
    @SETTINGS
    @given(st.data())
    def test_construction_is_acyclic(self, data):
        q = data.draw(acyclic_queries())
        assert q.is_acyclic()

    @SETTINGS
    @given(st.data())
    def test_acyclic_algorithm(self, data):
        q = data.draw(acyclic_queries())
        inst = data.draw(instance_for(q))
        assert run(inst, acyclic_join) == set(yannakakis(inst).rows)

    @SETTINGS
    @given(st.data())
    def test_yannakakis(self, data):
        q = data.draw(acyclic_queries())
        inst = data.draw(instance_for(q))
        assert run(inst, yannakakis_mpc) == set(yannakakis(inst).rows)

    @SETTINGS
    @given(st.data())
    def test_binhc_multiround(self, data):
        q = data.draw(acyclic_queries())
        inst = data.draw(instance_for(q))
        got = run(inst, binhc_join, remove_dangling_first=True)
        assert got == set(yannakakis(inst).rows)

    @SETTINGS
    @given(st.data())
    def test_auto_dispatch(self, data):
        q = data.draw(acyclic_queries())
        inst = data.draw(instance_for(q))
        res = mpc_join(q, inst, p=4)
        assert res.row_set() == set(yannakakis(inst).rows)


class TestGrownHierarchical:
    @SETTINGS
    @given(st.data())
    def test_construction_is_hierarchical(self, data):
        q = data.draw(hierarchical_queries())
        assert is_hierarchical(q)

    @SETTINGS
    @given(st.data())
    def test_rhierarchical_algorithm(self, data):
        q = data.draw(hierarchical_queries())
        inst = data.draw(instance_for(q))
        assert run(inst, rhierarchical_join) == set(yannakakis(inst).rows)

    @SETTINGS
    @given(st.data())
    def test_classification_at_most_r_hier(self, data):
        q = data.draw(hierarchical_queries())
        assert classify(q) <= JoinClass.R_HIERARCHICAL

    @SETTINGS
    @given(st.data())
    def test_acyclic_solver_handles_them_too(self, data):
        q = data.draw(hierarchical_queries())
        inst = data.draw(instance_for(q))
        assert run(inst, acyclic_join) == set(yannakakis(inst).rows)


class TestCrossAlgorithmAgreement:
    @SETTINGS
    @given(st.data())
    def test_all_algorithms_agree(self, data):
        """Independent implementations must produce identical result sets."""
        q = data.draw(acyclic_queries())
        inst = data.draw(instance_for(q))
        results = [
            run(inst, yannakakis_mpc),
            run(inst, acyclic_join),
            run(inst, binhc_join, remove_dangling_first=True),
        ]
        if is_r_hierarchical(q):
            results.append(run(inst, rhierarchical_join))
        assert all(r == results[0] for r in results)
