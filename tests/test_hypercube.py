"""Tests for HyperCube: shares, Cartesian products, and general joins."""

import math

import pytest

from repro.core.hypercube import (
    hypercube_cartesian,
    hypercube_join,
    optimal_cartesian_shares,
    optimal_join_shares,
)
from repro.data.generators import cartesian_instance, random_instance
from repro.mpc import Cluster, distribute_instance
from repro.query import catalog
from repro.theory.bounds import l_cartesian
from tests.conftest import oracle_rows


class TestShares:
    def test_cartesian_shares_within_budget(self):
        shares = optimal_cartesian_shares([100, 100, 100], 64)
        assert math.prod(shares) <= 64

    def test_cartesian_shares_balance(self):
        shares = optimal_cartesian_shares([1000, 1000], 16)
        assert shares == [4, 4]

    def test_skewed_sizes_get_skewed_shares(self):
        shares = optimal_cartesian_shares([10000, 10], 16)
        assert shares[0] > shares[1]

    def test_tiny_relation_share_capped(self):
        shares = optimal_cartesian_shares([1, 1000], 16)
        assert shares[0] == 1

    def test_join_shares_within_budget(self):
        q = catalog.triangle()
        shares = optimal_join_shares(q, {"R1": 100, "R2": 100, "R3": 100}, 27)
        assert math.prod(shares.values()) <= 27

    def test_join_shares_symmetric_triangle(self):
        q = catalog.triangle()
        shares = optimal_join_shares(q, {"R1": 500, "R2": 500, "R3": 500}, 27)
        assert len(set(shares.values())) == 1  # symmetric query, equal shares


class TestCartesian:
    @pytest.mark.parametrize("sizes", [[10, 10], [50, 5, 2], [7, 7, 7, 2]])
    def test_correctness(self, sizes):
        inst = cartesian_instance(sizes)
        cl = Cluster(8)
        g = cl.root_group()
        rels = distribute_instance(inst, g)
        res = hypercube_cartesian(g, [rels[n] for n in inst.query.edge_names])
        assert res.total_size() == math.prod(sizes)
        order = tuple(sorted(res.attrs))
        idx = [res.attrs.index(a) for a in order]
        got = {tuple(r[i] for i in idx) for r in res.all_rows()}
        assert got == oracle_rows(inst)

    def test_instance_optimal_load(self):
        """Load within a constant factor of L_Cartesian (eq. 1) — the
        HyperCube instance-optimality the paper builds on."""
        p = 16
        sizes = [2000, 40, 40]
        inst = cartesian_instance(sizes)
        cl = Cluster(p)
        g = cl.root_group()
        rels = distribute_instance(inst, g)
        hypercube_cartesian(g, [rels[n] for n in inst.query.edge_names])
        bound = l_cartesian(sizes, p)
        assert cl.snapshot().load <= 10 * bound + 20 * p

    def test_empty_factor_gives_empty(self):
        inst = cartesian_instance([5, 1])
        cl = Cluster(4)
        g = cl.root_group()
        rels = distribute_instance(inst, g)
        rels["R2"] = rels["R2"].empty_like()
        res = hypercube_cartesian(g, [rels["R1"], rels["R2"]])
        assert res.total_size() == 0

    def test_overlapping_schemas_rejected(self):
        from repro.errors import MPCError

        inst = cartesian_instance([3, 3])
        cl = Cluster(2)
        g = cl.root_group()
        rels = distribute_instance(inst, g)
        with pytest.raises(MPCError):
            hypercube_cartesian(g, [rels["R1"], rels["R1"]])


class TestHypercubeJoin:
    @pytest.mark.parametrize("name", ["binary", "line3", "star3"])
    def test_acyclic_correctness(self, name):
        q = catalog.CATALOG[name]
        inst = random_instance(q, 80, 8, seed=21)
        cl = Cluster(8)
        g = cl.root_group()
        res = hypercube_join(g, q, distribute_instance(inst, g))
        assert set(res.all_rows()) == oracle_rows(inst)

    def test_triangle_correctness(self):
        from repro.ram.joins import multi_join

        q = catalog.triangle()
        inst = random_instance(q, 100, 8, seed=22)
        cl = Cluster(8)
        g = cl.root_group()
        res = hypercube_join(g, q, distribute_instance(inst, g))
        full = multi_join([inst[n] for n in q.edge_names])
        expected = set()
        for row in full.rows:
            d = dict(zip(full.attrs, row))
            expected.add(tuple(d[a] for a in sorted(d)))
        assert set(res.all_rows()) == expected

    def test_each_result_emitted_once(self):
        q = catalog.triangle()
        inst = random_instance(q, 120, 6, seed=23)
        cl = Cluster(8)
        g = cl.root_group()
        res = hypercube_join(g, q, distribute_instance(inst, g))
        rows = res.all_rows()
        assert len(rows) == len(set(rows))

    def test_share_product_exceeding_group_raises(self):
        from repro.errors import MPCError

        q = catalog.binary_join()
        inst = random_instance(q, 10, 4, seed=0)
        cl = Cluster(4)
        g = cl.root_group()
        with pytest.raises(MPCError):
            hypercube_join(
                g, q, distribute_instance(inst, g), {"A": 3, "B": 3, "C": 3}
            )

    def test_explicit_shares_respected(self):
        q = catalog.binary_join()
        inst = random_instance(q, 60, 6, seed=24)
        cl = Cluster(9)
        g = cl.root_group()
        res = hypercube_join(
            g, q, distribute_instance(inst, g), {"A": 1, "B": 9, "C": 1}
        )
        assert set(res.all_rows()) == oracle_rows(inst)
