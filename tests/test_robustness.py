"""Robustness: degenerate shapes, adversarial values, failure paths.

Every public algorithm must either produce oracle-identical results or
raise a typed :mod:`repro.errors` exception — never crash or silently
mis-answer — on empty relations, singleton domains, unicode values,
mixed-type columns, and p larger than the data.
"""

import pytest

from repro.core.runner import ALGORITHMS, mpc_join, mpc_join_aggregate
from repro.data.generators import matching_instance, random_instance
from repro.data.instance import Instance
from repro.data.relation import Relation
from repro.query import catalog
from repro.ram.yannakakis import yannakakis
from repro.semiring import COUNT

JOIN_ALGOS = ["yannakakis", "line3", "acyclic", "binhc-multiround", "wc-line3"]


def expect_oracle(inst, algorithm, p=4):
    res = mpc_join(inst.query, inst, p=p, algorithm=algorithm)
    assert res.row_set() == set(yannakakis(inst).rows), algorithm


class TestDegenerateShapes:
    @pytest.mark.parametrize("algorithm", JOIN_ALGOS)
    def test_all_relations_empty(self, algorithm):
        q = catalog.line3()
        inst = Instance(
            q,
            {
                "R1": Relation("R1", ("A", "B"), []),
                "R2": Relation("R2", ("B", "C"), []),
                "R3": Relation("R3", ("C", "D"), []),
            },
        )
        expect_oracle(inst, algorithm)

    @pytest.mark.parametrize("algorithm", JOIN_ALGOS)
    def test_one_relation_empty(self, algorithm):
        q = catalog.line3()
        inst = Instance(
            q,
            {
                "R1": Relation("R1", ("A", "B"), [(1, 2)]),
                "R2": Relation("R2", ("B", "C"), []),
                "R3": Relation("R3", ("C", "D"), [(3, 4)]),
            },
        )
        expect_oracle(inst, algorithm)

    @pytest.mark.parametrize("algorithm", JOIN_ALGOS)
    def test_single_tuple_everywhere(self, algorithm):
        inst = matching_instance(catalog.line3(), 1)
        expect_oracle(inst, algorithm)

    @pytest.mark.parametrize("algorithm", JOIN_ALGOS)
    def test_p_larger_than_data(self, algorithm):
        inst = matching_instance(catalog.line3(), 3)
        expect_oracle(inst, algorithm, p=16)

    def test_single_value_domain(self):
        """Everything joins with everything: OUT = n^3 on one key."""
        q = catalog.line3()
        n = 12
        inst = Instance(
            q,
            {
                "R1": Relation("R1", ("A", "B"), [(i, 0) for i in range(n)]),
                "R2": Relation("R2", ("B", "C"), [(0, 0)]),
                "R3": Relation("R3", ("C", "D"), [(0, i) for i in range(n)]),
            },
        )
        for algorithm in JOIN_ALGOS:
            expect_oracle(inst, algorithm)


class TestAdversarialValues:
    def test_unicode_and_whitespace_values(self):
        q = catalog.binary_join()
        rows1 = [("ключ", "b 1"), ("", "b\t2"), ("naïve", "b 1")]
        rows2 = [("b 1", "x"), ("b\t2", "émoji 🎉")]
        inst = Instance(
            q,
            {
                "R1": Relation("R1", ("A", "B"), rows1),
                "R2": Relation("R2", ("B", "C"), rows2),
            },
        )
        for algorithm in ("yannakakis", "binhc", "acyclic"):
            expect_oracle(inst, algorithm)

    def test_mixed_type_join_column(self):
        """Ints and strings in one column must sort and join correctly."""
        q = catalog.binary_join()
        inst = Instance(
            q,
            {
                "R1": Relation("R1", ("A", "B"), [(1, 1), (2, "1"), (3, None)]),
                "R2": Relation("R2", ("B", "C"), [(1, "int"), ("1", "str"), (None, "none")]),
            },
        )
        expect_oracle(inst, "yannakakis")
        expect_oracle(inst, "acyclic")

    def test_negative_and_large_numbers(self):
        q = catalog.binary_join()
        inst = Instance(
            q,
            {
                "R1": Relation("R1", ("A", "B"), [(-(2**70), 0), (5, 2**80)]),
                "R2": Relation("R2", ("B", "C"), [(0, -1), (2**80, 7)]),
            },
        )
        expect_oracle(inst, "yannakakis")

    def test_tuple_valued_cells(self):
        """forest_instance produces tuple-typed values; joins must cope."""
        from repro.data.generators import forest_instance

        inst = forest_instance(catalog.q2_hierarchical(), 2)
        expect_oracle(inst, "rhierarchical")


class TestAggregateRobustness:
    def test_empty_instance_total(self):
        q = catalog.binary_join()
        inst = Instance(
            q,
            {
                "R1": Relation("R1", ("A", "B"), []),
                "R2": Relation("R2", ("B", "C"), []),
            },
        ).with_uniform_annotations(COUNT)
        res = mpc_join_aggregate(q, set(), inst, COUNT, p=4)
        assert res.scalar == 0

    def test_empty_instance_group_by(self):
        q = catalog.binary_join()
        inst = Instance(
            q,
            {
                "R1": Relation("R1", ("A", "B"), []),
                "R2": Relation("R2", ("B", "C"), []),
            },
        ).with_uniform_annotations(COUNT)
        res = mpc_join_aggregate(q, {"A"}, inst, COUNT, p=4)
        assert len(res.relation) == 0

    def test_all_dangling_group_by(self):
        q = catalog.binary_join()
        inst = Instance(
            q,
            {
                "R1": Relation("R1", ("A", "B"), [(1, 2)]),
                "R2": Relation("R2", ("B", "C"), [(9, 9)]),
            },
        ).with_uniform_annotations(COUNT)
        res = mpc_join_aggregate(q, {"A"}, inst, COUNT, p=4)
        assert len(res.relation) == 0


class TestErrorPaths:
    def test_unknown_algorithm_is_query_error(self):
        from repro.errors import QueryError

        inst = matching_instance(catalog.line3(), 2)
        with pytest.raises(QueryError):
            mpc_join(inst.query, inst, p=2, algorithm="nope")

    def test_all_errors_share_base_class(self):
        from repro import errors

        for name in (
            "QueryError",
            "CyclicQueryError",
            "SchemaError",
            "InstanceError",
            "MPCError",
            "AllocationError",
        ):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_algorithm_list_all_runnable_on_matching_line3(self):
        inst = matching_instance(catalog.line3(), 6)
        for algorithm in ALGORITHMS:
            if algorithm in ("wc-triangle", "rhierarchical"):
                continue  # wrong query class for line3
            res = mpc_join(inst.query, inst, p=4, algorithm=algorithm)
            assert res.row_set() == set(yannakakis(inst).rows), algorithm
