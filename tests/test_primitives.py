"""Tests for the Section 2 MPC primitives."""

import random

import pytest

from repro.data.relation import Relation
from repro.mpc import Cluster, distribute_relation
from repro.mpc.primitives import (
    global_sum,
    multi_numbering,
    multi_search,
    orderable,
    sample_sort,
    semi_join,
    sum_by_key,
)


def spread(items, p):
    return [list(items[i::p]) for i in range(p)]


class TestOrderable:
    def test_mixed_types_sortable(self):
        vals = [3, "b", None, (1, "x"), 2.5, b"z", True]
        keys = sorted(orderable(v) for v in vals)
        assert len(keys) == len(vals)

    def test_unorderable_raises(self):
        with pytest.raises(TypeError):
            orderable({"a": 1})


class TestSampleSort:
    @pytest.mark.parametrize("p", [1, 2, 5, 16])
    def test_globally_sorted(self, p):
        rng = random.Random(p)
        items = [rng.randrange(1000) for _ in range(700)]
        cl = Cluster(p)
        parts = sample_sort(cl.root_group(), spread(items, p), lambda x: x, "s")
        flat = [it for part in parts for _ok, _uid, it in part]
        assert flat == sorted(items) or sorted(flat) == sorted(items)
        # Global order: max of part i <= min of part i+1.
        keys = [[ok for ok, _u, _i in part] for part in parts]
        for a, b in zip(keys, keys[1:]):
            if a and b:
                assert a[-1] <= b[0]

    def test_balanced_under_heavy_key(self):
        """Equal keys split across servers (uid tiebreak): no server gets
        everything even when one key dominates."""
        p = 8
        items = ["heavy"] * 4000 + [f"k{i}" for i in range(100)]
        cl = Cluster(p)
        parts = sample_sort(cl.root_group(), spread(items, p), lambda x: x, "s")
        sizes = [len(part) for part in parts]
        assert max(sizes) <= 2 * (len(items) // p) + 64

    def test_empty_input(self):
        cl = Cluster(4)
        parts = sample_sort(cl.root_group(), [[], [], [], []], lambda x: x, "s")
        assert all(not part for part in parts)

    def test_load_linear(self):
        p = 8
        n = 4000
        items = list(range(n))
        cl = Cluster(p)
        sample_sort(cl.root_group(), spread(items, p), lambda x: x, "s")
        # ~n/p per server plus O(p) sampling traffic.
        assert cl.snapshot().load <= 3 * (n // p) + 10 * p


class TestSumByKey:
    @pytest.mark.parametrize("p", [1, 3, 8])
    def test_matches_reference(self, p):
        rng = random.Random(p)
        pairs = [(f"k{rng.randrange(40)}", rng.randrange(5)) for _ in range(900)]
        pairs += [("skew", 1)] * 700
        cl = Cluster(p)
        parts = sum_by_key(cl.root_group(), spread(pairs, p))
        got = {}
        for part in parts:
            for k, v in part:
                assert k not in got, "duplicate key emitted"
                got[k] = v
        expected = {}
        for k, v in pairs:
            expected[k] = expected.get(k, 0) + v
        assert got == expected

    def test_custom_operator_max(self):
        pairs = [("a", 3), ("a", 9), ("b", 1)]
        cl = Cluster(2)
        parts = sum_by_key(cl.root_group(), spread(pairs, 2), plus=max)
        got = dict(kv for part in parts for kv in part)
        assert got == {"a": 9, "b": 1}

    def test_single_spanning_key(self):
        """One key covering every server exercises the whole chain logic."""
        p = 6
        pairs = [("only", 1)] * 600
        cl = Cluster(p)
        parts = sum_by_key(cl.root_group(), spread(pairs, p))
        got = [kv for part in parts for kv in part]
        assert got == [("only", 600)]

    def test_empty(self):
        cl = Cluster(3)
        parts = sum_by_key(cl.root_group(), [[], [], []])
        assert all(not p_ for p_ in parts)


class TestMultiNumbering:
    @pytest.mark.parametrize("p", [1, 4, 9])
    def test_consecutive_numbers_per_key(self, p):
        rng = random.Random(p)
        pairs = [(f"k{rng.randrange(6)}", i) for i in range(500)]
        cl = Cluster(p)
        parts = multi_numbering(cl.root_group(), spread(pairs, p))
        per_key = {}
        payloads = set()
        for part in parts:
            for k, payload, num in part:
                per_key.setdefault(k, []).append(num)
                payloads.add((k, payload))
        for k, nums in per_key.items():
            assert sorted(nums) == list(range(1, len(nums) + 1)), k
        assert payloads == set(pairs)

    def test_single_key_spanning_everything(self):
        p = 5
        pairs = [("x", i) for i in range(333)]
        cl = Cluster(p)
        parts = multi_numbering(cl.root_group(), spread(pairs, p))
        nums = sorted(n for part in parts for _k, _p, n in part)
        assert nums == list(range(1, 334))


class TestMultiSearch:
    @pytest.mark.parametrize("p", [1, 2, 7])
    def test_predecessor_semantics(self, p):
        rng = random.Random(p)
        ys = sorted(rng.sample(range(10000), 120))
        xs = rng.sample(range(10000), 300)
        cl = Cluster(p)
        res = multi_search(
            cl.root_group(),
            spread([(x, None) for x in xs], p),
            spread([(y, y) for y in ys], p),
        )
        import bisect

        found = {}
        for part in res:
            for xk, _xp, pk, _pv in part:
                found[xk] = pk
        for x in xs:
            i = bisect.bisect_right(ys, x)
            assert found[x] == (ys[i - 1] if i else None)

    def test_ties_resolve_to_y(self):
        cl = Cluster(2)
        res = multi_search(
            cl.root_group(),
            [[(5, "x")], []],
            [[(5, "y")], []],
        )
        rows = [r for part in res for r in part]
        assert rows == [(5, "x", 5, "y")]

    def test_no_y_gives_none(self):
        cl = Cluster(2)
        res = multi_search(cl.root_group(), [[(1, "x")], []], [[], []])
        rows = [r for part in res for r in part]
        assert rows == [(1, "x", None, None)]


class TestSemiJoin:
    def test_matches_ram(self):
        from repro.ram.joins import semi_join as ram_semi

        r1 = Relation("R1", ("A", "B"), [(i, i % 7) for i in range(200)])
        r2 = Relation("R2", ("B", "C"), [(b, 0) for b in (1, 3, 5)])
        cl = Cluster(4)
        g = cl.root_group()
        got = semi_join(g, distribute_relation(r1, g), distribute_relation(r2, g))
        assert set(got.all_rows()) == set(ram_semi(r1, r2).rows)

    def test_no_shared_attrs_empty_filter(self):
        r1 = Relation("R1", ("A",), [(1,), (2,)])
        r2 = Relation("R2", ("B",), [])
        cl = Cluster(2)
        g = cl.root_group()
        got = semi_join(g, distribute_relation(r1, g), distribute_relation(r2, g))
        assert got.total_size() == 0

    def test_no_shared_attrs_nonempty_filter(self):
        r1 = Relation("R1", ("A",), [(1,), (2,)])
        r2 = Relation("R2", ("B",), [(9,)])
        cl = Cluster(2)
        g = cl.root_group()
        got = semi_join(g, distribute_relation(r1, g), distribute_relation(r2, g))
        assert set(got.all_rows()) == {(1,), (2,)}

    def test_linear_load(self):
        n, p = 4000, 8
        r1 = Relation("R1", ("A", "B"), [(i, i % 100) for i in range(n)])
        r2 = Relation("R2", ("B", "C"), [(b, 0) for b in range(50)])
        cl = Cluster(p)
        g = cl.root_group()
        semi_join(g, distribute_relation(r1, g), distribute_relation(r2, g))
        assert cl.snapshot().load <= 4 * (n + 50) // p + 20 * p


class TestGlobalSum:
    def test_basic(self):
        cl = Cluster(4)
        assert global_sum(cl.root_group(), [1, 2, 3, 4]) == 10

    def test_wrong_arity(self):
        from repro.errors import MPCError

        cl = Cluster(4)
        with pytest.raises(MPCError):
            global_sum(cl.root_group(), [1, 2])
