"""Load scaling in p: more servers must mean less load per server.

Each theorem predicts how the load falls as p grows (1/p for the linear
terms, 1/sqrt(p) for the output terms, p^{-2/3} for the triangle grid).
These tests sweep p at fixed workloads and check the direction and rough
magnitude of the decrease.
"""

import pytest

from repro.core.runner import mpc_join, mpc_output_size
from repro.data.generators import line_trap_instance, star_instance
from repro.data.hard_instances import triangle_random_hard
from repro.query import catalog


class TestPScaling:
    def test_count_scales_linearly(self):
        inst = line_trap_instance(3, 12000, 48000)
        loads = {}
        for p in (4, 16):
            _cnt, rep = mpc_output_size(inst.query, inst, p)
            loads[p] = rep.load
        # 4x servers -> ~4x less load (linear primitive), generous slack.
        assert loads[16] < 0.45 * loads[4]

    def test_yannakakis_scales_linearly(self):
        inst = line_trap_instance(3, 8000, 64000)
        loads = {}
        for p in (4, 16):
            res = mpc_join(inst.query, inst, p=p, algorithm="yannakakis")
            loads[p] = res.report.load
        assert loads[16] < 0.5 * loads[4]

    def test_line3_load_decreases_with_p(self):
        inst = line_trap_instance(3, 6000, 240000, doubled=True)
        loads = {}
        for p in (4, 16):
            res = mpc_join(inst.query, inst, p=p, algorithm="line3")
            loads[p] = res.report.load
        # Between 1/sqrt(p) and 1/p: must at least halve for 4x servers.
        assert loads[16] < 0.7 * loads[4]

    def test_rhierarchical_load_decreases_with_p(self):
        # Large enough that IN/p dominates the fixed coordination constants.
        inst = star_instance(3, 400, 5)
        loads = {}
        for p in (2, 8):
            res = mpc_join(inst.query, inst, p=p, algorithm="rhierarchical")
            loads[p] = res.report.load
        assert loads[8] < 0.8 * loads[2]

    def test_triangle_grid_scaling(self):
        inst = triangle_random_hard(6000, 24000, seed=141)
        loads = {}
        for p in (8, 64):
            res = mpc_join(inst.query, inst, p=p, algorithm="wc-triangle")
            loads[p] = res.report.load
        # 8x servers -> p^{2/3} = 4x less load.
        assert loads[64] < 0.45 * loads[8]

    def test_p1_equals_ram_total(self):
        """On one server nothing needs to move after the initial placement
        except coordination constants."""
        inst = line_trap_instance(3, 1200, 4800)
        res = mpc_join(inst.query, inst, p=1, algorithm="yannakakis")
        assert res.report.load == 0  # self-messages are free

    def test_monotone_in_p_generally(self):
        inst = line_trap_instance(3, 6000, 24000)
        prev = None
        for p in (2, 4, 8, 16):
            res = mpc_join(inst.query, inst, p=p, algorithm="line3")
            if prev is not None:
                assert res.report.load < 1.3 * prev  # never blows up with p
            prev = res.report.load
