"""Tests for join-project (conjunctive) queries via the Boolean semiring."""

import pytest

from repro.core.runner import mpc_join_project
from repro.data.generators import matching_instance, random_instance
from repro.errors import QueryError
from repro.query import catalog
from repro.ram.yannakakis import yannakakis


def ram_projection(instance, attrs):
    full = yannakakis(instance)
    pos = full.positions(tuple(sorted(attrs)))
    return {tuple(row[i] for i in pos) for row in full.rows}


class TestJoinProject:
    @pytest.mark.parametrize("outputs", [{"A"}, {"A", "B"}, {"B", "C"}])
    def test_line3_projections(self, outputs):
        q = catalog.line3()
        inst = random_instance(q, 70, 6, seed=131)
        res = mpc_join_project(q, outputs, inst, p=8)
        assert set(res.relation.rows) == ram_projection(inst, outputs)
        assert all(w is True for w in res.relation.annotations)

    def test_star_projection(self):
        q = catalog.star_join(3)
        inst = random_instance(q, 50, 5, seed=132)
        res = mpc_join_project(q, {"Z", "X1"}, inst, p=4)
        assert set(res.relation.rows) == ram_projection(inst, {"Z", "X1"})

    def test_projection_is_distinct(self):
        q = catalog.line3()
        inst = matching_instance(q, 30)
        res = mpc_join_project(q, {"A"}, inst, p=4)
        rows = list(res.relation.rows)
        assert len(rows) == len(set(rows)) == 30

    def test_non_free_connex_rejected(self):
        q = catalog.line3()
        inst = matching_instance(q, 10)
        with pytest.raises(QueryError):
            mpc_join_project(q, {"A", "D"}, inst, p=4)

    def test_projection_smaller_than_join(self):
        """The aggregated output can be far below |Q(R)| (Theorem 9's point)."""
        from repro.data.generators import line_trap_instance

        inst = line_trap_instance(3, 900, 9000)
        res = mpc_join_project(inst.query, {"X0"}, inst, p=8)
        assert len(res.relation) < inst.output_size() / 10
