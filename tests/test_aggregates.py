"""Tests for Section 6: counting, LinearAggroYannakakis, join-aggregate."""

import pytest

from repro.core.aggregates import (
    aggregate_out,
    aggregate_total,
    annotated_reduce,
    mpc_count,
    mpc_group_by_count,
    mpc_subset_sizes,
)
from repro.core.runner import mpc_join_aggregate, mpc_output_size
from repro.data.generators import (
    add_dangling,
    matching_instance,
    random_instance,
    star_instance,
)
from repro.mpc import Cluster, distribute_instance
from repro.query import catalog
from repro.query.ghd import output_join_tree
from repro.ram.yannakakis import group_by_count, join_size, subset_join_sizes, yannakakis
from repro.semiring import BOOLEAN, COUNT, MIN_TROPICAL, SUM_PRODUCT


class TestMpcCount:
    @pytest.mark.parametrize("name", ["binary", "line3", "star3", "fork", "line5"])
    def test_matches_oracle(self, name):
        q = catalog.CATALOG[name]
        inst = random_instance(q, 60, 6, seed=71)
        cl = Cluster(8)
        g = cl.root_group()
        assert mpc_count(g, q, distribute_instance(inst, g)) == join_size(inst)

    def test_with_dangling(self):
        inst = add_dangling(matching_instance(catalog.line3(), 30), 10, seed=72)
        cl = Cluster(4)
        g = cl.root_group()
        assert mpc_count(g, inst.query, distribute_instance(inst, g)) == 30

    def test_zero(self):
        from repro.data.instance import Instance
        from repro.data.relation import Relation

        q = catalog.binary_join()
        inst = Instance(
            q,
            {
                "R1": Relation("R1", ("A", "B"), [(1, 2)]),
                "R2": Relation("R2", ("B", "C"), [(7, 8)]),
            },
        )
        cl = Cluster(2)
        g = cl.root_group()
        assert mpc_count(g, q, distribute_instance(inst, g)) == 0

    def test_linear_load_corollary4(self):
        """Corollary 4: count load ~ IN/p even when OUT is enormous."""
        from repro.data.generators import line_trap_instance

        p = 8
        inst = line_trap_instance(3, 2400, 200000)  # OUT ~ 80x IN
        cl = Cluster(p)
        g = cl.root_group()
        cnt = mpc_count(g, inst.query, distribute_instance(inst, g))
        assert cnt == join_size(inst)
        assert cl.snapshot().load <= 15 * inst.input_size / p + 40 * p


class TestGroupByCount:
    def test_matches_oracle(self):
        q = catalog.line3()
        inst = random_instance(q, 80, 6, seed=73)
        cl = Cluster(8)
        g = cl.root_group()
        parts = mpc_group_by_count(g, q, distribute_instance(inst, g), ("B",))
        got = {k: v for part in parts for k, v in part}
        assert got == group_by_count(inst, ("B",))

    def test_requires_covering_relation(self):
        from repro.errors import QueryError

        q = catalog.line3()
        inst = matching_instance(q, 5)
        cl = Cluster(2)
        g = cl.root_group()
        with pytest.raises(QueryError):
            mpc_group_by_count(g, q, distribute_instance(inst, g), ("A", "D"))


class TestSubsetSizes:
    def test_matches_eq2_on_hierarchical(self):
        """On dangling-free hierarchical instances the S-join sizes equal
        |Q(R, S)| (Theorem 2 proof) — the eq. 2 statistics."""
        inst = star_instance(2, 4, 3)
        cl = Cluster(4)
        g = cl.root_group()
        got = mpc_subset_sizes(g, inst.query, distribute_instance(inst, g))
        assert got == subset_join_sizes(inst)

    def test_matches_ram_join_sizes(self):
        """In general the statistic is the subset *join* size."""
        from repro.ram.joins import multi_join

        inst = matching_instance(catalog.line3(), 25)
        cl = Cluster(4)
        g = cl.root_group()
        got = mpc_subset_sizes(g, inst.query, distribute_instance(inst, g))
        for s, cnt in got.items():
            expected = len(multi_join([inst[n] for n in sorted(s)]))
            assert cnt == expected, s

    def test_star_subsets(self):
        inst = star_instance(2, 4, 3)
        cl = Cluster(4)
        g = cl.root_group()
        got = mpc_subset_sizes(g, inst.query, distribute_instance(inst, g))
        assert got[frozenset({"R1"})] == 12
        assert got[frozenset({"R1", "R2"})] == 4 * 9


class TestAggregateOut:
    def _annotated_rels(self, inst, group):
        return distribute_instance(inst.with_uniform_annotations(COUNT), group, annotate=True)

    def test_residual_attrs_are_output_only(self):
        q = catalog.line3()
        inst = random_instance(q, 50, 5, seed=74).without_dangling()
        cl = Cluster(4)
        g = cl.root_group()
        rels = self._annotated_rels(inst, g)
        scaffold = output_join_tree(q, frozenset({"A", "B"}))
        residual = aggregate_out(g, scaffold, rels, COUNT)
        for rel in residual.values():
            real = [a for a in rel.attrs if not a.startswith("#")]
            assert set(real) <= {"A", "B"}

    def test_counts_preserved(self):
        """Sum of residual annotations (joined) equals the true group counts."""
        q = catalog.line3()
        inst = random_instance(q, 50, 5, seed=75)
        res = mpc_join_aggregate(q, {"B"}, inst.with_uniform_annotations(COUNT), COUNT, p=4)
        expected = {k: v for k, v in group_by_count(inst, ("B",)).items()}
        got = dict(zip(res.relation.rows, res.relation.annotations))
        assert got == {k: v for k, v in expected.items()}


class TestJoinAggregate:
    @pytest.mark.parametrize(
        "outputs", [set(), {"A"}, {"B"}, {"A", "B"}, {"B", "C"}, {"A", "B", "C"}]
    )
    def test_line3_count_groupings(self, outputs):
        q = catalog.line3()
        inst = random_instance(q, 70, 6, seed=76)
        ann = inst.with_uniform_annotations(COUNT)
        res = mpc_join_aggregate(q, outputs, ann, COUNT, p=8)
        if not outputs:
            assert res.scalar == join_size(inst)
        else:
            expected = group_by_count(inst, tuple(sorted(outputs)))
            got = dict(zip(res.relation.rows, res.relation.annotations))
            assert got == expected

    def test_full_output_is_plain_join(self):
        q = catalog.line3()
        inst = random_instance(q, 50, 6, seed=77)
        ann = inst.with_uniform_annotations(COUNT)
        res = mpc_join_aggregate(q, q.attributes, ann, COUNT, p=4)
        assert set(res.relation.rows) == set(yannakakis(inst).rows)
        assert all(w == 1 for w in res.relation.annotations)

    def test_non_free_connex_rejected(self):
        from repro.errors import QueryError

        q = catalog.line3()
        inst = matching_instance(q, 10).with_uniform_annotations(COUNT)
        with pytest.raises(QueryError):
            mpc_join_aggregate(q, {"A", "D"}, inst, COUNT, p=4)

    def test_unannotated_rejected(self):
        from repro.errors import QueryError

        q = catalog.line3()
        inst = matching_instance(q, 10)
        with pytest.raises(QueryError):
            mpc_join_aggregate(q, {"A"}, inst, COUNT, p=4)

    def test_min_tropical_shortest_path_flavor(self):
        """min-plus aggregation: cheapest 2-hop cost per source.

        Note y = {A, C} would *not* be free-connex on the binary join (it
        adds a triangle edge — boolean matrix multiplication); y = {A} is.
        """
        from repro.data.instance import Instance
        from repro.data.relation import Relation

        q = catalog.binary_join()
        r1 = Relation(
            "R1", ("A", "B"),
            [("s", "m1"), ("s", "m2")],
            annotations=[1.0, 5.0], semiring=MIN_TROPICAL,
        )
        r2 = Relation(
            "R2", ("B", "C"),
            [("m1", "t"), ("m2", "t")],
            annotations=[10.0, 2.0], semiring=MIN_TROPICAL,
        )
        inst = Instance(q, {"R1": r1, "R2": r2})
        res = mpc_join_aggregate(q, {"A"}, inst, MIN_TROPICAL, p=4)
        got = dict(zip(res.relation.rows, res.relation.annotations))
        assert got == {("s",): 7.0}  # min(1+10, 5+2)

    def test_endpoint_projection_not_free_connex(self):
        """y = {A, C} on the binary join is rejected (matrix product)."""
        from repro.errors import QueryError

        q = catalog.binary_join()
        inst = matching_instance(q, 5).with_uniform_annotations(COUNT)
        with pytest.raises(QueryError):
            mpc_join_aggregate(q, {"A", "C"}, inst, COUNT, p=4)

    def test_boolean_semiring(self):
        q = catalog.line3()
        inst = random_instance(q, 40, 5, seed=78)
        ann = inst.with_uniform_annotations(BOOLEAN)
        res = mpc_join_aggregate(q, {"A"}, ann, BOOLEAN, p=4)
        expected = {k for k in group_by_count(inst, ("A",))}
        assert set(res.relation.rows) == expected
        assert all(w is True for w in res.relation.annotations)

    def test_sum_product_weighted(self):
        import random as rnd

        q = catalog.binary_join()
        inst = random_instance(q, 40, 5, seed=79)
        rng = rnd.Random(0)
        from repro.data.instance import Instance
        from repro.data.relation import Relation

        rels = {}
        weights = {}
        for n, rel in inst.relations.items():
            ws = [float(rng.randint(1, 5)) for _ in rel.rows]
            weights[n] = dict(zip(rel.rows, ws))
            rels[n] = Relation(n, rel.attrs, rel.rows, ws, SUM_PRODUCT)
        ann = Instance(q, rels)
        res = mpc_join_aggregate(q, {"B"}, ann, SUM_PRODUCT, p=4)
        # RAM reference.
        full = yannakakis(ann)
        expected = {}
        for row, w in zip(full.rows, full.annotations):
            b = (row[full.positions(("B",))[0]],)
            expected[b] = expected.get(b, 0.0) + w
        got = dict(zip(res.relation.rows, res.relation.annotations))
        assert got == pytest.approx(expected)

    def test_out_hierarchical_dispatch(self):
        q = catalog.line3()
        inst = random_instance(q, 50, 5, seed=80)
        ann = inst.with_uniform_annotations(COUNT)
        res = mpc_join_aggregate(q, {"A", "B"}, ann, COUNT, p=4)
        assert res.meta["downstream"] == "rhierarchical"

    def test_disconnected_component_scalar(self):
        """A component with no output attrs multiplies into every result."""
        from repro.data.instance import Instance
        from repro.data.relation import Relation
        from repro.query.hypergraph import Hypergraph

        q = Hypergraph({"R1": ("A", "B"), "R2": ("X",)})
        inst = Instance(
            q,
            {
                "R1": Relation("R1", ("A", "B"), [(1, 2), (3, 4)]),
                "R2": Relation("R2", ("X",), [(7,), (8,), (9,)]),
            },
        ).with_uniform_annotations(COUNT)
        res = mpc_join_aggregate(q, {"A"}, inst, COUNT, p=4)
        got = dict(zip(res.relation.rows, res.relation.annotations))
        assert got == {(1,): 3, (3,): 3}

    def test_star_group_by_hub(self):
        q = catalog.star_join(3)
        inst = star_instance(3, 5, 3)
        ann = inst.with_uniform_annotations(COUNT)
        res = mpc_join_aggregate(q, {"Z"}, ann, COUNT, p=8)
        got = dict(zip(res.relation.rows, res.relation.annotations))
        assert got == group_by_count(inst, ("Z",))


class TestAnnotatedReduce:
    def test_annotations_folded_not_lost(self):
        q = catalog.simple_r_hierarchical()
        inst = matching_instance(q, 6)
        ann = inst.with_uniform_annotations(COUNT)
        res = mpc_join_aggregate(q, set(), ann, COUNT, p=4)
        assert res.scalar == 6

    def test_weighted_contained_relation(self):
        from repro.data.instance import Instance
        from repro.data.relation import Relation

        q = catalog.simple_r_hierarchical()
        inst = Instance(
            q,
            {
                "R1": Relation("R1", ("A",), [(1,)], annotations=[2], semiring=COUNT),
                "R2": Relation("R2", ("A", "B"), [(1, 5)], annotations=[3], semiring=COUNT),
                "R3": Relation("R3", ("B",), [(5,)], annotations=[7], semiring=COUNT),
            },
        )
        res = mpc_join_aggregate(q, set(), inst, COUNT, p=2)
        assert res.scalar == 2 * 3 * 7


class TestOutputSizePrimitive:
    def test_matches_and_linear(self):
        from repro.data.generators import line_trap_instance

        inst = line_trap_instance(3, 1500, 30000)
        cnt, rep = mpc_output_size(inst.query, inst, 8)
        assert cnt == join_size(inst)
        assert rep.load <= 15 * inst.input_size / 8 + 40 * 8
