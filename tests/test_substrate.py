"""Tests for the performance substrate: key encoding + sorted-run caching.

The contract under test (see DESIGN.md): the caches may only change
wall-clock time.  Outputs, loads, step-max, step counts, and per-label
ledger tallies must be bit-for-bit identical between

* a first (cold) and a second (cached) invocation of every primitive on
  the same relation/keys — the cache must re-charge communication in full;
* the cached path and the cache-bypassed path on arbitrary instances.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.relation import Relation, project_row
from repro.mpc import Cluster, cache_disabled, distribute_relation
from repro.mpc.primitives import (
    attach_degrees,
    count_by_key,
    fold_by_key,
    number_rows,
    orderable,
    search_rows,
    semi_join,
)
from repro.mpc.substrate import (
    column_kind,
    pair_key_encoder,
    projection_encoder,
    scalar_encoder,
    sorted_run,
)


def make_rel(rows, attrs=("A", "B"), name="R"):
    return Relation(name, attrs, rows)


def dist(rel, p):
    cl = Cluster(p)
    g = cl.root_group()
    return cl, g, distribute_relation(rel, g)


def ledger_key(report):
    return (report.load, report.max_step_load, report.steps, report.totals,
            report.by_label)


def delta(before, after):
    """Per-call ledger increment between two snapshots."""
    totals = tuple(a - b for a, b in zip(after.totals, before.totals))
    labels = {
        k: v - before.by_label.get(k, 0)
        for k, v in after.by_label.items()
        if v != before.by_label.get(k, 0)
    }
    return (totals, after.steps - before.steps, labels)


MIXED_ROWS = [
    (1, "x"), (2, "y"), (None, "y"), (True, "z"), ((1, 2), "x"), (2.5, "w"),
]


class TestEncoders:
    def test_projection_encoder_matches_orderable(self):
        rng = random.Random(3)
        rows = [(rng.randrange(50), f"s{rng.randrange(9)}") for _ in range(200)]
        _cl, _g, rel = dist(make_rel(rows), 4)
        for pos in [(0,), (1,), (0, 1), (1, 0)]:
            enc = projection_encoder(rel, pos)
            for part in rel.parts:
                for row in part:
                    assert enc(row) == orderable(project_row(row, pos))

    def test_scalar_encoder_matches_orderable(self):
        rows = [(i, f"s{i}") for i in range(40)]
        _cl, _g, rel = dist(make_rel(rows), 3)
        for col in (0, 1):
            enc = scalar_encoder(rel, col)
            for part in rel.parts:
                for row in part:
                    assert enc(row) == orderable(row[col])

    def test_mixed_columns_fall_back(self):
        _cl, _g, rel = dist(make_rel(MIXED_ROWS), 2)
        assert column_kind(rel, 0) is None  # None/bool/tuple disqualify
        assert column_kind(rel, 1) == 3  # all str
        enc = projection_encoder(rel, (0, 1))
        for part in rel.parts:
            for row in part:
                assert enc(row) == orderable(row)

    def test_bool_disqualifies_int_column(self):
        rows = [(1, "a"), (True, "b")]
        _cl, _g, rel = dist(make_rel(rows), 1)
        assert column_kind(rel, 0) is None
        enc = scalar_encoder(rel, 0)
        assert enc((True, "b")) == orderable(True) == (1, 1)

    def test_pair_encoder_matches_orderable_on_both_sides(self):
        _cl, g, rel1 = dist(make_rel([(1, "a"), (2, "b")]), 2)
        rel2 = distribute_relation(make_rel([("x", 1)], attrs=("B", "C")), g)
        # Mismatched kinds: the dictionary-LUT fallback must still encode
        # keys from either side bit-identically to plain orderable().
        enc = pair_key_encoder(rel1, (0,), rel2, (0,))
        if enc is not None:
            for key in [(1,), (2,), ("x",), (3.5,), (None,)]:
                assert enc(key) == orderable(key)
        enc = pair_key_encoder(rel1, (0,), rel2, (1,))
        assert enc is not None
        assert enc((7,)) == orderable((7,))

    def test_pair_encoder_none_without_fast_path(self):
        # Row-backed relations with mismatched kinds have no dictionaries
        # to read; the caller's plain-orderable fallback is then cheapest.
        from repro.mpc.distrel import DistRelation

        r1 = DistRelation("R", ("A",), [[(1,)], [(2,)]])
        r2 = DistRelation("S", ("B",), [[("x",)], [("y",)]])
        assert pair_key_encoder(r1, (0,), r2, (0,)) is None


class TestRunCacheRecharges:
    """Second invocation on the same relation/keys: identical results AND
    identical incremental ledger tallies (no under-charging)."""

    @pytest.mark.parametrize("p", [1, 3, 8])
    def test_each_primitive_twice(self, p):
        rng = random.Random(p)
        rows = [(rng.randrange(30), rng.randrange(10)) for _ in range(400)]
        cl, g, rel = dist(make_rel(rows), p)
        flt = distribute_relation(
            make_rel([(b, 0) for b in range(0, 10, 2)], attrs=("B", "C"), name="F"),
            g,
        )
        table = count_by_key(g, rel, ("B",), "tab")

        calls = [
            lambda: attach_degrees(g, rel, ("B",), "t-deg"),
            lambda: count_by_key(g, rel, ("B",), "t-cnt"),
            lambda: fold_by_key(g, rel, ("B",), plus=max, label="t-fold"),
            lambda: search_rows(g, rel, ("B",), table, "t-sr"),
            lambda: number_rows(g, rel, ("A",), "t-num"),
            lambda: number_rows(
                g, rel, ("B",), "t-numf", only_keys={(0,), (3,), (7,)}
            ),
            lambda: semi_join(g, rel, flt, "t-sj").parts,
        ]
        for call in calls:
            s0 = cl.snapshot()
            first = call()
            s1 = cl.snapshot()
            second = call()
            s2 = cl.snapshot()
            assert first == second
            assert delta(s0, s1) == delta(s1, s2)

    def test_run_object_is_reused(self):
        cl, g, rel = dist(make_rel([(i, i % 5) for i in range(100)]), 4)
        r1 = sorted_run(g, rel, ("B",), "warm")
        r2 = sorted_run(g, rel, ("B",), "warm")
        assert r1 is r2
        with cache_disabled():
            r3 = sorted_run(g, rel, ("B",), "warm")
        assert r3 is not r1
        assert r3.parts == r1.parts
        assert r3.splitters == r1.splitters


# Hypothesis value pools: homogeneous and heterogeneous columns.
_VALUE = st.one_of(
    st.integers(min_value=-20, max_value=20),
    st.sampled_from(["a", "b", "cc", "d"]),
    st.none(),
    st.booleans(),
)


@st.composite
def instances(draw):
    p = draw(st.integers(min_value=1, max_value=6))
    n = draw(st.integers(min_value=0, max_value=50))
    homogeneous = draw(st.booleans())
    if homogeneous:
        rows = [
            (draw(st.integers(min_value=0, max_value=8)),
             draw(st.integers(min_value=0, max_value=4)))
            for _ in range(n)
        ]
    else:
        rows = [(draw(_VALUE), draw(_VALUE)) for _ in range(n)]
    t = draw(st.integers(min_value=0, max_value=6))
    table_keys = sorted({(draw(_VALUE),) for _ in range(t)}, key=repr)
    return p, rows, table_keys


class TestCachedEqualsBypassed:
    @given(instances())
    @settings(max_examples=40, deadline=None)
    def test_primitives_property(self, inst):
        p, rows, table_keys = inst
        rel_ram = make_rel(rows)

        def run_all(bypass):
            cl = Cluster(p)
            g = cl.root_group()
            rel = distribute_relation(rel_ram, g)
            out = []
            if bypass:
                with cache_disabled():
                    out.append(attach_degrees(g, rel, ("B",), "deg"))
                    tab = count_by_key(g, rel, ("B",), "cnt")
                    out.append(tab)
                    out.append(search_rows(g, rel, ("B",), tab, "sr"))
                    out.append(number_rows(g, rel, ("A", "B"), "num"))
                    out.append(
                        search_rows(
                            g, rel, ("B",),
                            [[(k, 1) for k in table_keys]] + [[]] * (p - 1),
                            "ext",
                        )
                    )
            else:
                out.append(attach_degrees(g, rel, ("B",), "deg"))
                tab = count_by_key(g, rel, ("B",), "cnt")
                out.append(tab)
                out.append(search_rows(g, rel, ("B",), tab, "sr"))
                out.append(number_rows(g, rel, ("A", "B"), "num"))
                out.append(
                    search_rows(
                        g, rel, ("B",),
                        [[(k, 1) for k in table_keys]] + [[]] * (p - 1),
                        "ext",
                    )
                )
            return out, cl.snapshot()

        got_c, rep_c = run_all(bypass=False)
        got_u, rep_u = run_all(bypass=True)
        assert got_c == got_u
        assert ledger_key(rep_c) == ledger_key(rep_u)

    @given(instances())
    @settings(max_examples=30, deadline=None)
    def test_semantics_against_reference(self, inst):
        p, rows, _table_keys = inst
        rel_ram = make_rel(rows)
        cl = Cluster(p)
        g = cl.root_group()
        rel = distribute_relation(rel_ram, g)

        expected = {}
        for row in rel_ram.rows:
            k = (row[1],)
            expected[orderable(k)] = expected.get(orderable(k), 0) + 1

        counted = count_by_key(g, rel, ("B",), "cnt")
        got = {}
        for part in counted:
            for k, c in part:
                ok = orderable(k)
                assert ok not in got, "duplicate key emitted"
                got[ok] = c
        assert got == expected

        withdeg = attach_degrees(g, rel, ("B",), "deg")
        seen = []
        for part in withdeg:
            for row, deg in part:
                assert deg == expected[orderable((row[1],))]
                seen.append(row)
        assert sorted(seen, key=repr) == sorted(rel_ram.rows, key=repr)


class TestJoinLevelParity:
    def test_acyclic_join_cached_equals_bypassed(self):
        """The acceptance gate: the full acyclic join at p=8 produces
        identical outputs and identical ledger metrics with and without
        the substrate caches."""
        from repro.core.runner import mpc_join
        from repro.data.generators import line_trap_instance

        inst = line_trap_instance(4, 600, 4000, doubled=True)
        res_c = mpc_join(inst.query, inst, p=8, algorithm="acyclic")
        with cache_disabled():
            res_u = mpc_join(inst.query, inst, p=8, algorithm="acyclic")
        assert res_c.report.load == res_u.report.load
        assert res_c.report.max_step_load == res_u.report.max_step_load
        assert res_c.report.steps == res_u.report.steps
        assert res_c.report.by_label == res_u.report.by_label
        assert res_c.relation.attrs == res_u.relation.attrs
        assert res_c.relation.parts == res_u.relation.parts

    @pytest.mark.parametrize("algorithm", ["yannakakis", "line3", "binhc"])
    def test_other_algorithms_cached_equals_bypassed(self, algorithm):
        from repro.core.runner import mpc_join
        from repro.data.generators import line_trap_instance

        inst = line_trap_instance(3, 400, 1600)
        res_c = mpc_join(inst.query, inst, p=4, algorithm=algorithm)
        with cache_disabled():
            res_u = mpc_join(inst.query, inst, p=4, algorithm=algorithm)
        assert res_c.report.load == res_u.report.load
        assert res_c.report.steps == res_u.report.steps
        assert res_c.relation.attrs == res_u.relation.attrs
        assert res_c.relation.parts == res_u.relation.parts
