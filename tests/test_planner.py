"""Tests for the MPC-aware Yannakakis planner."""

import pytest

from repro.core.planner import (
    best_yannakakis_plan,
    enumerate_fold_orders,
    plan_quality,
)
from repro.core.yannakakis import yannakakis_mpc
from repro.data.generators import line_trap_instance, matching_instance, random_instance
from repro.errors import QueryError
from repro.mpc import Cluster, distribute_instance
from repro.query import catalog
from tests.conftest import assert_matches_oracle, oracle_rows


class TestEnumeration:
    def test_line3_orders_are_connected(self):
        orders = enumerate_fold_orders(catalog.line3())
        q = catalog.line3()
        for order in orders:
            for k in range(2, len(order) + 1):
                prefix_attrs = [q.attrs_of(n) for n in order[:k]]
                # Each newly added relation shares an attribute with the prefix.
                joined = set().union(*prefix_attrs[:-1])
                assert joined & prefix_attrs[-1], order

    def test_line3_has_four_orders(self):
        # R1->R2->R3, R2->{R1,R3} x2, R3->R2->R1.
        orders = enumerate_fold_orders(catalog.line3())
        assert len(orders) == 4

    def test_every_order_is_a_permutation(self):
        q = catalog.fork_join()
        for order in enumerate_fold_orders(q):
            assert sorted(order) == sorted(q.edge_names)

    def test_limit_respected(self):
        orders = enumerate_fold_orders(catalog.broom_join(), limit=3)
        assert len(orders) <= 3


class TestBestPlan:
    def test_picks_the_good_direction_on_trap(self):
        """Figure 3: the planner must avoid the OUT-sized intermediate."""
        inst = line_trap_instance(3, 1500, 45000, direction="forward")
        cl = Cluster(8)
        g = cl.root_group()
        rels = distribute_instance(inst, g)
        choice = best_yannakakis_plan(g, inst.query, rels)
        # Forward trap: R1 x R2 is OUT-sized; the plan must not start there.
        assert set(choice.order[:2]) != {"R1", "R2"}
        assert choice.max_intermediate < 0.2 * inst.output_size()

    def test_planned_run_beats_bad_plan(self):
        from repro.core.yannakakis import left_deep_plan

        inst = line_trap_instance(3, 1500, 45000, direction="forward")
        cl = Cluster(8)
        g = cl.root_group()
        rels = distribute_instance(inst, g)
        choice = best_yannakakis_plan(g, inst.query, rels)

        good = assert_matches_oracle(
            inst, yannakakis_mpc, p=8, plan=choice.plan
        )
        bad = assert_matches_oracle(
            inst, yannakakis_mpc, p=8, plan=left_deep_plan(["R1", "R2", "R3"])
        )
        assert good.load < 0.6 * bad.load

    def test_cyclic_rejected(self):
        inst = random_instance(catalog.triangle(), 10, 3, seed=1)
        cl = Cluster(2)
        g = cl.root_group()
        with pytest.raises(QueryError):
            best_yannakakis_plan(g, inst.query, distribute_instance(inst, g))

    def test_correctness_of_chosen_plan(self):
        inst = random_instance(catalog.broom_join(), 40, 5, seed=123)
        cl = Cluster(4)
        g = cl.root_group()
        rels = distribute_instance(inst, g)
        choice = best_yannakakis_plan(g, inst.query, rels)
        res = yannakakis_mpc(g, inst.query, rels, plan=choice.plan)
        assert set(res.all_rows()) == oracle_rows(inst)

    def test_planning_cost_is_linear(self):
        inst = line_trap_instance(3, 4000, 40000)
        p = 8
        cl = Cluster(p)
        g = cl.root_group()
        best_yannakakis_plan(g, inst.query, distribute_instance(inst, g))
        # Counting passes only: no OUT-sized shuffles during planning.
        assert cl.snapshot().load < 20 * inst.input_size / p + 50 * p


class TestPlanQuality:
    def test_trap_gap_detected(self):
        inst = line_trap_instance(3, 1500, 45000, direction="forward")
        cl = Cluster(8)
        g = cl.root_group()
        q = plan_quality(g, inst.query, distribute_instance(inst, g))
        assert q["worst"] > 5 * q["best"]

    def test_doubled_trap_all_orders_bad(self):
        """Figure 3 (full): even the best order has an OUT-scale intermediate."""
        inst = line_trap_instance(3, 1500, 22000, doubled=True)
        cl = Cluster(8)
        g = cl.root_group()
        q = plan_quality(g, inst.query, distribute_instance(inst, g))
        assert q["best"] > 0.4 * inst.output_size()

    def test_uniform_instance_orders_similar(self):
        inst = matching_instance(catalog.line3(), 100)
        cl = Cluster(4)
        g = cl.root_group()
        q = plan_quality(g, inst.query, distribute_instance(inst, g))
        assert q["worst"] == q["best"]
