"""Tests for hypergraphs, GYO reduction, and join trees."""

import pytest

from repro.errors import CyclicQueryError, QueryError
from repro.query import catalog
from repro.query.hypergraph import Hypergraph, gyo_reduction, join_tree


class TestHypergraphBasics:
    def test_edges_and_attributes(self):
        q = Hypergraph({"R1": ("A", "B"), "R2": ("B", "C")})
        assert q.attributes == {"A", "B", "C"}
        assert q.attrs_of("R1") == {"A", "B"}
        assert q.num_edges == 2
        assert q.num_attributes == 3

    def test_edges_with(self):
        q = catalog.line3()
        assert q.edges_with("B") == {"R1", "R2"}
        assert q.edges_with("A") == {"R1"}

    def test_unknown_edge_raises(self):
        q = catalog.line3()
        with pytest.raises(QueryError):
            q.attrs_of("R9")

    def test_unknown_attribute_raises(self):
        q = catalog.line3()
        with pytest.raises(QueryError):
            q.edges_with("Z")

    def test_empty_query_raises(self):
        with pytest.raises(QueryError):
            Hypergraph({})

    def test_empty_edge_raises(self):
        with pytest.raises(QueryError):
            Hypergraph({"R1": ()})

    def test_equality_and_hash(self):
        q1 = Hypergraph({"R1": ("A", "B")})
        q2 = Hypergraph({"R1": ("B", "A")})
        assert q1 == q2
        assert hash(q1) == hash(q2)

    def test_contains_and_iter(self):
        q = catalog.line3()
        assert "R1" in q and "R9" not in q
        assert sorted(q) == ["R1", "R2", "R3"]
        assert len(q) == 3


class TestDerivedHypergraphs:
    def test_with_edge(self):
        q = catalog.line3().with_edge("Y", ("A", "D"))
        assert q.attrs_of("Y") == {"A", "D"}
        assert q.num_edges == 4

    def test_with_duplicate_edge_raises(self):
        with pytest.raises(QueryError):
            catalog.line3().with_edge("R1", ("A",))

    def test_without_edges(self):
        q = catalog.line3().without_edges(["R3"])
        assert set(q.edge_names) == {"R1", "R2"}

    def test_without_all_edges_raises(self):
        with pytest.raises(QueryError):
            catalog.line3().without_edges(["R1", "R2", "R3"])

    def test_residual_removes_attributes(self):
        q = catalog.line3().residual({"B"})
        assert q.attrs_of("R1") == {"A"}
        assert q.attrs_of("R2") == {"C"}

    def test_residual_drops_empty_edges(self):
        q = Hypergraph({"R1": ("A",), "R2": ("A", "B")}).residual({"A"})
        assert set(q.edge_names) == {"R2"}

    def test_project(self):
        q = catalog.line3().project({"A", "B", "C"})
        assert q.attrs_of("R3") == {"C"}

    def test_connected_components(self):
        q = Hypergraph({"R1": ("A", "B"), "R2": ("B", "C"), "R3": ("X",)})
        comps = q.connected_components()
        assert sorted(sorted(c) for c in comps) == [["R1", "R2"], ["R3"]]


class TestReduce:
    def test_reduce_removes_contained_edges(self):
        q = catalog.simple_r_hierarchical()
        reduced, witness = q.reduce()
        assert set(reduced.edge_names) == {"R2"}
        assert witness == {"R1": "R2", "R3": "R2"}

    def test_reduce_noop_on_reduced(self):
        q = catalog.line3()
        reduced, witness = q.reduce()
        assert set(reduced.edge_names) == {"R1", "R2", "R3"}
        assert witness == {}

    def test_reduce_equal_edges_keeps_one(self):
        q = Hypergraph({"R1": ("A", "B"), "R2": ("A", "B")})
        reduced, witness = q.reduce()
        assert len(reduced.edge_names) == 1
        assert len(witness) == 1

    def test_reduce_chain_of_containments(self):
        q = Hypergraph({"R1": ("A",), "R2": ("A", "B"), "R3": ("A", "B", "C")})
        reduced, witness = q.reduce()
        assert set(reduced.edge_names) == {"R3"}
        # Witness chains must resolve to the survivor.
        assert set(witness.values()) == {"R3"}

    def test_reduce_idempotent(self):
        q = catalog.q2_r_hierarchical()
        reduced1, _ = q.reduce()
        reduced2, w2 = reduced1.reduce()
        assert reduced1 == reduced2
        assert w2 == {}


class TestGYO:
    def test_acyclic_queries_reduce(self):
        for name in ["binary", "line3", "line4", "star3", "q1_tall_flat", "fork"]:
            assert gyo_reduction(catalog.CATALOG[name]) is not None, name

    def test_triangle_is_cyclic(self):
        assert gyo_reduction(catalog.triangle()) is None

    def test_cycle4_is_cyclic(self):
        q = Hypergraph(
            {"R1": ("A", "B"), "R2": ("B", "C"), "R3": ("C", "D"), "R4": ("D", "A")}
        )
        assert gyo_reduction(q) is None

    def test_keep_last_respected(self):
        parent = gyo_reduction(catalog.line3(), keep_last="R2")
        assert parent is not None
        assert parent["R2"] is None

    def test_keep_last_unknown_raises(self):
        with pytest.raises(QueryError):
            gyo_reduction(catalog.line3(), keep_last="R9")

    def test_single_edge(self):
        parent = gyo_reduction(Hypergraph({"R1": ("A",)}))
        assert parent == {"R1": None}


class TestJoinTree:
    def test_cyclic_raises(self):
        with pytest.raises(CyclicQueryError):
            join_tree(catalog.triangle())

    @pytest.mark.parametrize(
        "name",
        ["binary", "line3", "line4", "line5", "star3", "q1_tall_flat",
         "q2_hierarchical", "q2_r_hierarchical", "fork", "broom", "two_ears"],
    )
    def test_validates_on_catalog(self, name):
        tree = join_tree(catalog.CATALOG[name])
        tree.validate()  # coherence holds
        assert set(tree.nodes()) == set(catalog.CATALOG[name].edge_names)

    def test_rooting(self):
        for root in catalog.line3().edge_names:
            tree = join_tree(catalog.line3(), root=root)
            assert tree.root == root
            tree.validate()

    def test_bottom_up_parents_last(self):
        tree = join_tree(catalog.fork_join())
        order = tree.bottom_up()
        for node in order:
            par = tree.parent[node]
            if par is not None:
                assert order.index(node) < order.index(par)

    def test_top_down_is_reverse(self):
        tree = join_tree(catalog.line_join(5))
        assert tree.top_down() == list(reversed(tree.bottom_up()))

    def test_leaves_and_depth(self):
        tree = join_tree(catalog.line3(), root="R1")
        assert tree.depth(tree.root) == 0
        assert all(tree.depth(leaf) >= 1 for leaf in tree.leaves())

    def test_separator(self):
        tree = join_tree(catalog.line3(), root="R2")
        assert tree.separator("R2") == frozenset()
        seps = {tree.separator(n) for n in ("R1", "R3")}
        assert seps == {frozenset({"B"}), frozenset({"C"})}

    def test_internal_nodes_with_leaf_children_exists(self):
        for name in ["line3", "line5", "fork", "broom", "q1_tall_flat"]:
            tree = join_tree(catalog.CATALOG[name])
            if len(tree.nodes()) >= 2:
                assert tree.internal_nodes_with_leaf_children(), name

    def test_subtree(self):
        tree = join_tree(catalog.line3(), root="R1")
        assert tree.subtree(tree.root) == set(tree.nodes())

    def test_highest_node_with(self):
        tree = join_tree(catalog.line3(), root="R1")
        assert tree.highest_node_with("A") == "R1"
        assert tree.highest_node_with("B") == "R1"

    def test_disconnected_query_gets_glued_tree(self):
        q = Hypergraph({"R1": ("A",), "R2": ("B",)})
        tree = join_tree(q)
        tree.validate()
        assert len(tree.nodes()) == 2
