"""Tests for the worst-case-optimal comparators."""

import math

import pytest

from repro.core.wcoj import line3_worst_case, triangle_worst_case
from repro.data.generators import line_trap_instance, matching_instance, random_instance
from repro.data.hard_instances import triangle_random_hard
from repro.errors import QueryError
from repro.mpc import Cluster, distribute_instance
from repro.query import catalog
from tests.conftest import assert_matches_oracle


def triangle_oracle(inst):
    from repro.ram.joins import multi_join

    full = multi_join([inst[n] for n in inst.query.edge_names])
    out = set()
    for row in full.rows:
        d = dict(zip(full.attrs, row))
        out.add(tuple(d[a] for a in sorted(d)))
    return out


class TestLine3WorstCase:
    def test_correctness(self):
        inst = line_trap_instance(3, 900, 9000)
        assert_matches_oracle(inst, line3_worst_case, p=16)

    def test_random(self):
        inst = random_instance(catalog.line3(), 100, 8, seed=101)
        assert_matches_oracle(inst, line3_worst_case, p=9)

    def test_load_scales_as_in_over_sqrt_p(self):
        # Wide join-attribute domains so the hash grid can balance (the
        # trap instance's tiny middle domain would floor the load).
        inst = random_instance(catalog.line3(), 4000, 1500, seed=100)
        loads = {}
        for p in (4, 16, 64):
            cl = Cluster(p)
            g = cl.root_group()
            line3_worst_case(g, inst.query, distribute_instance(inst, g))
            loads[p] = cl.snapshot().load
        # Quadrupling p should roughly halve the load (1/sqrt(p)).
        assert loads[16] < 0.8 * loads[4]
        assert loads[64] < 0.8 * loads[16]

    def test_rejects_non_line3(self):
        inst = matching_instance(catalog.star_join(3), 5)
        cl = Cluster(4)
        g = cl.root_group()
        with pytest.raises(QueryError):
            line3_worst_case(g, inst.query, distribute_instance(inst, g))


class TestTriangleWorstCase:
    def test_correctness_random(self):
        inst = random_instance(catalog.triangle(), 150, 10, seed=102)
        cl = Cluster(8)
        g = cl.root_group()
        res = triangle_worst_case(g, inst.query, distribute_instance(inst, g))
        assert set(res.all_rows()) == triangle_oracle(inst)

    def test_correctness_hard_instance(self):
        inst = triangle_random_hard(900, 2700, seed=103)
        cl = Cluster(27)
        g = cl.root_group()
        res = triangle_worst_case(g, inst.query, distribute_instance(inst, g))
        assert set(res.all_rows()) == triangle_oracle(inst)

    def test_load_scales_as_p_to_two_thirds(self):
        inst = triangle_random_hard(6000, 50000, seed=104)
        loads = {}
        for p in (8, 64):
            cl = Cluster(p)
            g = cl.root_group()
            triangle_worst_case(g, inst.query, distribute_instance(inst, g))
            loads[p] = cl.snapshot().load
        # p x8 => load should drop by ~4 (p^{2/3}); allow slack.
        assert loads[64] < 0.45 * loads[8]

    def test_rejects_non_triangle(self):
        inst = matching_instance(catalog.line3(), 5)
        cl = Cluster(8)
        g = cl.root_group()
        with pytest.raises(QueryError):
            triangle_worst_case(g, inst.query, distribute_instance(inst, g))

    def test_no_duplicates(self):
        inst = random_instance(catalog.triangle(), 120, 8, seed=105)
        cl = Cluster(27)
        g = cl.root_group()
        res = triangle_worst_case(g, inst.query, distribute_instance(inst, g))
        rows = res.all_rows()
        assert len(rows) == len(set(rows))
