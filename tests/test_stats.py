"""Tests for the instance statistics module."""

import pytest

from repro.data.generators import line_trap_instance, matching_instance, star_instance
from repro.data.stats import degree_summary, instance_report
from repro.query import catalog


class TestDegreeSummary:
    def test_uniform(self):
        inst = matching_instance(catalog.binary_join(), 10)
        s = degree_summary(inst, "R1", "B")
        assert s.distinct == 10
        assert s.max_degree == 1
        assert s.skew == pytest.approx(1.0)

    def test_skewed(self):
        inst = star_instance(2, 2, 10)  # two hubs, fanout 10
        s = degree_summary(inst, "R1", "Z")
        assert s.max_degree == 10
        assert s.distinct == 2

    def test_empty_relation(self):
        from repro.data.instance import Instance
        from repro.data.relation import Relation

        q = catalog.binary_join()
        inst = Instance(
            q,
            {
                "R1": Relation("R1", ("A", "B"), []),
                "R2": Relation("R2", ("B", "C"), []),
            },
        )
        s = degree_summary(inst, "R1", "B")
        assert s.distinct == 0 and s.skew == 0.0


class TestInstanceReport:
    def test_fields(self):
        inst = line_trap_instance(3, 900, 9000)
        rep = instance_report(inst)
        assert rep.query_class == "ACYCLIC"
        assert rep.in_size == inst.input_size
        assert rep.out_size == inst.output_size()
        assert rep.tau_line3 == pytest.approx((rep.out_size / rep.in_size) ** 0.5, rel=0.01)

    def test_only_join_attributes_profiled(self):
        inst = matching_instance(catalog.line3(), 5)
        rep = instance_report(inst)
        profiled = {(d.relation, d.attr) for d in rep.degrees}
        # A and D appear in one relation each: not join attributes.
        assert all(attr in ("B", "C") for _rel, attr in profiled)

    def test_heavy_counts_match_threshold(self):
        inst = line_trap_instance(3, 900, 9000)
        rep = instance_report(inst)
        tau = rep.tau_line3
        for (rel, attr), heavy in rep.heavy_counts.items():
            degs = inst.degrees(rel, (attr,))
            assert heavy == sum(1 for d in degs.values() if d > tau)

    def test_summary_renders(self):
        inst = matching_instance(catalog.line3(), 5)
        text = instance_report(inst).summary()
        assert "class=ACYCLIC" in text
        assert "IN=15" in text

    def test_max_skew_orders_instances(self):
        from repro.data.generators import forest_instance

        smooth = instance_report(matching_instance(catalog.line3(), 60))
        skewed = instance_report(
            forest_instance(catalog.q2_hierarchical(), 3, skew=6.0)
        )
        assert skewed.max_skew() > smooth.max_skew()

    def test_trap_is_structurally_hard_not_skewed(self):
        """Figure 3's trap has uniform degrees: its difficulty is the
        domain-size structure, not skew — worth asserting explicitly."""
        rep = instance_report(line_trap_instance(3, 600, 6000))
        assert rep.max_skew() == pytest.approx(1.0)
        assert rep.out_size > 5 * rep.in_size
