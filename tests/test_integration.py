"""End-to-end integration: pipelines that cross every layer.

These tests chain the subsystems the way a downstream user would: generate
or load data, plan, join, aggregate, and cross-check everything against
the RAM oracle and against each other.
"""

import pytest

from repro import (
    COUNT,
    Hypergraph,
    classify,
    mpc_join,
    mpc_join_aggregate,
    mpc_join_project,
    mpc_output_size,
)
from repro.core.planner import best_yannakakis_plan
from repro.data.generators import line_trap_instance, random_instance
from repro.data.stats import instance_report
from repro.io import read_instance_dir, write_instance_dir
from repro.mpc import Cluster, distribute_instance
from repro.query import catalog
from repro.ram.yannakakis import group_by_count, join_size, yannakakis


class TestCsvToJoinPipeline:
    def test_generate_save_load_join(self, tmp_path):
        inst = random_instance(catalog.fork_join(), 50, 6, seed=161)
        write_instance_dir(inst, tmp_path / "warehouse")
        loaded = read_instance_dir(tmp_path / "warehouse")
        assert classify(loaded.query).name == "ACYCLIC"
        res = mpc_join(loaded.query, loaded, p=8, validate=True)
        assert res.output_size == loaded.output_size()

    def test_aggregate_pipeline_after_reload(self, tmp_path):
        inst = random_instance(catalog.line3(), 60, 6, seed=162)
        write_instance_dir(inst, tmp_path / "d")
        loaded = read_instance_dir(tmp_path / "d")
        ann = loaded.with_uniform_annotations(COUNT)
        res = mpc_join_aggregate(loaded.query, {"B"}, ann, COUNT, p=4)
        expected = group_by_count(loaded, ("B",))
        assert dict(zip(res.relation.rows, res.relation.annotations)) == expected


class TestPlanThenExecute:
    def test_planner_feeds_yannakakis(self):
        inst = line_trap_instance(3, 1200, 12000)
        cl = Cluster(8)
        g = cl.root_group()
        rels = distribute_instance(inst, g)
        choice = best_yannakakis_plan(g, inst.query, rels)
        res = mpc_join(
            inst.query, inst, p=8, algorithm="yannakakis", plan=choice.plan
        )
        assert res.row_set() == set(yannakakis(inst).rows)

    def test_diagnose_then_choose_algorithm(self):
        """The stats report drives the same decision the dispatcher makes."""
        inst = line_trap_instance(3, 900, 18000)
        report = instance_report(inst)
        assert report.query_class == "ACYCLIC"
        assert report.out_size > report.in_size  # output-sensitive regime
        res = mpc_join(inst.query, inst, p=8)
        assert res.meta["algorithm"] == "line3"


class TestConsistencyMatrix:
    """The same question answered four independent ways must agree."""

    def test_out_size_four_ways(self):
        inst = random_instance(catalog.line3(), 80, 7, seed=163)
        # 1. RAM counting oracle.
        a = join_size(inst)
        # 2. MPC linear-load count (Corollary 4).
        b, _ = mpc_output_size(inst.query, inst, 8)
        # 3. Materializing the join.
        c = mpc_join(inst.query, inst, p=8).output_size
        # 4. Total COUNT aggregate (Section 6).
        d = mpc_join_aggregate(
            inst.query, set(), inst.with_uniform_annotations(COUNT), COUNT, p=8
        ).scalar
        assert a == b == c == d

    def test_projection_two_ways(self):
        inst = random_instance(catalog.line3(), 70, 6, seed=164)
        via_project = set(
            mpc_join_project(inst.query, {"A", "B"}, inst, p=4).relation.rows
        )
        full = yannakakis(inst)
        pos = full.positions(("A", "B"))
        via_join = {(r[pos[0]], r[pos[1]]) for r in full.rows}
        assert via_project == via_join

    def test_groupby_sums_to_total(self):
        inst = random_instance(catalog.fork_join(), 50, 5, seed=165)
        ann = inst.with_uniform_annotations(COUNT)
        per_b = mpc_join_aggregate(inst.query, {"B"}, ann, COUNT, p=4)
        total = mpc_join_aggregate(inst.query, set(), ann, COUNT, p=4)
        assert sum(per_b.relation.annotations) == total.scalar == join_size(inst)


class TestMixedWorkload:
    def test_multi_query_session_on_one_dataset(self):
        """Several queries over shared relations, as an application would."""
        from repro.data.instance import Instance
        from repro.data.relation import Relation

        users = Relation("users", ("city", "uid"), [
            (f"c{i % 4}", f"u{i}") for i in range(40)
        ])
        follows = Relation("follows", ("uid", "vid"), [
            (f"u{i}", f"u{(i * 7) % 40}") for i in range(40)
        ] + [(f"u{i}", f"u{(i + 1) % 40}") for i in range(40)])
        cities = Relation("cities2", ("city2", "vid"), [
            (f"c{i % 4}", f"u{i}") for i in range(40)
        ])

        q = Hypergraph(
            {"users": ("city", "uid"), "follows": ("uid", "vid"),
             "cities2": ("vid", "city2")},
            name="social",
        )
        inst = Instance(q, {"users": users, "follows": follows, "cities2": cities})

        # Full join.
        res = mpc_join(q, inst, p=8, validate=True)
        # Count per source city.
        ann = inst.with_uniform_annotations(COUNT)
        agg = mpc_join_aggregate(q, {"city"}, ann, COUNT, p=8)
        assert sum(agg.relation.annotations) == res.output_size
        # Distinct (city, city2) pairs — requires free-connex check.
        from repro.query.ghd import is_free_connex

        assert not is_free_connex(q, {"city", "city2"})  # matrix-product shape
        assert is_free_connex(q, {"city", "uid"})
