"""The paper's inline examples and remarks, codified as tests.

Each test pins a specific sentence of the paper to executable behaviour,
so the reproduction can be audited claim by claim.
"""

import math

import pytest

from repro.data.generators import cartesian_instance
from repro.query import catalog
from repro.query.classify import (
    is_hierarchical,
    is_r_hierarchical,
    is_tall_flat,
)
from repro.query.hypergraph import Hypergraph
from repro.theory.bounds import l_cartesian


class TestSection13CartesianExamples:
    """Intro: two instances of R1(A) x R2(B) x R3(C) with IN, OUT = IN^2
    fixed but different lower bounds — the skew phenomenon."""

    IN = 3**6  # makes the size arithmetic exact
    P = 8

    def test_balanced_instance_cube_root_bound(self):
        n = round(self.IN ** 0.5)
        sizes = [n, n, self.IN]  # N1 = N2 = sqrt(IN), N3 = IN
        bound = l_cartesian(sizes, self.P)
        out = math.prod(sizes)
        # Dominated by the full product: (OUT/p)^(1/3).
        assert bound == pytest.approx(max(
            (out / self.P) ** (1 / 3),
            (n * self.IN / self.P) ** (1 / 2),
            self.IN / self.P,
        ))

    def test_skewed_instance_square_root_bound(self):
        sizes = [1, self.IN, self.IN]
        bound = l_cartesian(sizes, self.P)
        # Degenerates to a 2-set product: (IN^2/p)^(1/2).
        assert bound == pytest.approx((self.IN * self.IN / self.P) ** 0.5)

    def test_skew_raises_the_bound(self):
        """'instance (2) has a higher lower bound than instance (1)'."""
        n = round(self.IN ** 0.5)
        balanced = l_cartesian([n, n, self.IN], self.P)
        skewed = l_cartesian([1, self.IN, self.IN], self.P)
        assert skewed > balanced


class TestSection14ClassExamples:
    def test_q1_is_tall_flat(self):
        assert is_tall_flat(catalog.q1_tall_flat())

    def test_q2_is_hierarchical_not_tall_flat(self):
        q2 = catalog.q2_hierarchical()
        assert is_hierarchical(q2) and not is_tall_flat(q2)

    def test_q2_extension_r_hier_not_hier(self):
        """'Q2 on R4(x3,x5) on R5(x5) is r-hierarchical but not
        hierarchical.'"""
        q = catalog.q2_r_hierarchical()
        assert is_r_hierarchical(q) and not is_hierarchical(q)

    def test_r1a_r2ab_r3b_example(self):
        """'R1(A) on R2(A,B) on R3(B) is r-hierarchical but not
        hierarchical.'"""
        q = catalog.simple_r_hierarchical()
        assert is_r_hierarchical(q) and not is_hierarchical(q)

    def test_hierarchical_must_be_r_hierarchical(self):
        for q in catalog.CATALOG.values():
            if is_hierarchical(q):
                assert is_r_hierarchical(q)

    def test_r_hierarchical_must_be_acyclic(self):
        """'an r-hierarchical join must be acyclic.'"""
        for q in catalog.CATALOG.values():
            if is_r_hierarchical(q):
                assert q.is_acyclic()


class TestSection32CaseTwoExample:
    """The Case 2 motivating instance: |Q1(R1)| = 1, Q2 = binary join with
    |dom(B)| = 1, |R1| = IN, |R2| = p.  Interleaving beats staging."""

    def test_interleaved_beats_two_step(self):
        from repro.core.rhierarchical import rhierarchical_join
        from repro.data.instance import Instance
        from repro.data.relation import Relation
        from repro.mpc import Cluster, distribute_instance
        from repro.query.hypergraph import Hypergraph

        p = 8
        n = 1600
        q = Hypergraph(
            {"S": ("Z",), "R1": ("A", "B"), "R2": ("B", "C")},
            name="case2-example",
        )
        inst = Instance(
            q,
            {
                "S": Relation("S", ("Z",), [("only",)]),
                "R1": Relation("R1", ("A", "B"), [(i, 0) for i in range(n)]),
                "R2": Relation("R2", ("B", "C"), [(0, j) for j in range(p)]),
            },
        )
        cl = Cluster(p)
        g = cl.root_group()
        res = rhierarchical_join(g, q, distribute_instance(inst, g))
        assert res.total_size() == n * p
        # The two-step approach would store the OUT = p*IN intermediate:
        # load >= IN per server.  The interleaved algorithm stays well under.
        assert cl.snapshot().load < n


class TestFootnotes:
    def test_footnote2_yannakakis_bound(self):
        """Footnote 2: with the optimal binary join as subroutine the
        Yannakakis load is O(IN/p + OUT/p), not O((IN+OUT)^2/p)."""
        from repro.core.runner import mpc_join
        from repro.data.generators import line_trap_instance

        p = 8
        inst = line_trap_instance(3, 1500, 30000)
        res = mpc_join(inst.query, inst, p=p, algorithm="yannakakis")
        out = inst.output_size()
        # Far below the quadratic bound, within constants of the linear one.
        quadratic = (inst.input_size + out) ** 2 / p
        linear = (inst.input_size + out) / p
        assert res.report.load < quadratic / 50
        assert res.report.load < 25 * linear

    def test_footnote3_higher_bounds_possible(self):
        """Footnote 3 context: L_instance is a lower bound, not always
        achievable — on the line-3 hard instance loads exceed it."""
        from repro.core.runner import mpc_join
        from repro.data.hard_instances import line3_random_hard
        from repro.theory.bounds import l_instance

        p = 8
        inst = line3_random_hard(2400, p * 2400, seed=151)
        li = l_instance(inst.query, inst, p)
        res = mpc_join(inst.query, inst, p=p, algorithm="line3")
        assert res.report.load > 3 * li


class TestSection5DummyAttribute:
    """Section 5: 'if s_i is empty we can add a dummy attribute' — our
    implementation handles empty separators via the empty-tuple key."""

    def test_leaf_with_empty_separator(self):
        from repro.core.acyclic import acyclic_join
        from repro.data.instance import Instance
        from repro.data.relation import Relation
        from repro.mpc import Cluster, distribute_instance
        from repro.ram.yannakakis import yannakakis

        q = Hypergraph(
            {"R0": ("A", "B"), "R1": ("B", "C"), "R2": ("X",)},
            name="dummy-sep",
        )
        inst = Instance(
            q,
            {
                "R0": Relation("R0", ("A", "B"), [(i, i % 3) for i in range(12)]),
                "R1": Relation("R1", ("B", "C"), [(i % 3, i) for i in range(9)]),
                "R2": Relation("R2", ("X",), [(1,), (2,)]),
            },
        )
        cl = Cluster(4)
        g = cl.root_group()
        res = acyclic_join(g, q, distribute_instance(inst, g))
        assert set(res.all_rows()) == set(yannakakis(inst).rows)


class TestLemma1Examples:
    def test_line3_integral_cover_is_two(self):
        from repro.query.covers import integral_edge_cover

        cover = integral_edge_cover(catalog.line3())
        assert len(cover) == 2
        assert cover == {"R1", "R3"}

    def test_cartesian_cover_is_everything(self):
        from repro.query.covers import integral_edge_cover

        q = catalog.cartesian_product(3)
        assert integral_edge_cover(q) == {"R1", "R2", "R3"}
