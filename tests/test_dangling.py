"""Tests for the distributed full reducer and the reduce procedure."""

from repro.data.generators import add_dangling, matching_instance, random_instance
from repro.mpc import Cluster, distribute_instance
from repro.mpc.dangling import reduce_instance, remove_dangling
from repro.query import catalog


class TestRemoveDangling:
    def test_clean_instance_untouched(self):
        inst = matching_instance(catalog.line3(), 20)
        cl = Cluster(4)
        g = cl.root_group()
        rels = distribute_instance(inst, g)
        out = remove_dangling(g, inst.query, rels)
        for n in inst.relations:
            assert set(out[n].all_rows()) == set(inst[n].rows)

    def test_matches_ram_reducer(self):
        inst = add_dangling(random_instance(catalog.fork_join(), 60, 6, seed=3), 15, seed=4)
        expected = inst.without_dangling()
        cl = Cluster(4)
        g = cl.root_group()
        out = remove_dangling(g, inst.query, distribute_instance(inst, g))
        for n in inst.relations:
            assert set(out[n].all_rows()) == set(expected[n].rows), n

    def test_linear_load(self):
        inst = add_dangling(matching_instance(catalog.line3(), 2000), 500, seed=5)
        p = 8
        cl = Cluster(p)
        g = cl.root_group()
        remove_dangling(g, inst.query, distribute_instance(inst, g))
        n = inst.input_size
        # Two sweeps of semi-joins: a small constant times IN/p.
        assert cl.snapshot().load <= 20 * n // p + 50 * p

    def test_empty_relation_propagates(self):
        from repro.data.instance import Instance
        from repro.data.relation import Relation

        q = catalog.line3()
        inst = Instance(
            q,
            {
                "R1": Relation("R1", ("A", "B"), [(1, 2)]),
                "R2": Relation("R2", ("B", "C"), []),
                "R3": Relation("R3", ("C", "D"), [(3, 4)]),
            },
        )
        cl = Cluster(2)
        g = cl.root_group()
        out = remove_dangling(g, q, distribute_instance(inst, g))
        assert all(out[n].total_size() == 0 for n in out)


class TestReduceInstance:
    def test_contained_relations_dropped(self):
        inst = matching_instance(catalog.simple_r_hierarchical(), 10)
        cl = Cluster(4)
        g = cl.root_group()
        rels = distribute_instance(inst, g)
        rels = remove_dangling(g, inst.query, rels)
        reduced_q, reduced = reduce_instance(g, inst.query, rels)
        assert set(reduced_q.edge_names) == {"R2"}
        assert set(reduced) == {"R2"}
        assert reduced["R2"].total_size() == 10

    def test_join_preserved_after_reduce(self):
        """Joining only the reduced relations reproduces the full join."""
        from repro.ram.joins import multi_join
        from repro.ram.yannakakis import yannakakis

        inst = random_instance(catalog.q2_r_hierarchical(), 40, 4, seed=6).without_dangling()
        cl = Cluster(4)
        g = cl.root_group()
        rels = distribute_instance(inst, g)
        reduced_q, reduced = reduce_instance(g, inst.query, rels)
        kept = multi_join(
            [reduced[n].to_relation() for n in reduced_q.edge_names]
        )
        expected = yannakakis(inst)
        got = {
            tuple(row[kept.positions(expected.attrs)[i]] for i in range(len(expected.attrs)))
            for row in kept.rows
        }
        assert got == set(expected.rows)

    def test_noop_on_reduced_query(self):
        inst = matching_instance(catalog.line3(), 5)
        cl = Cluster(2)
        g = cl.root_group()
        reduced_q, reduced = reduce_instance(
            g, inst.query, distribute_instance(inst, g)
        )
        assert set(reduced_q.edge_names) == {"R1", "R2", "R3"}
