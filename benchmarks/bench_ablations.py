"""EXP-ABL — ablations of the design choices DESIGN.md calls out.

1. Heavy/light decomposition (Sec 4.2): force the line-3 algorithm's
   threshold to the extremes (tau -> 0: everything heavy; tau -> inf:
   everything light) and compare against the balanced sqrt(OUT/IN).
   Each extreme collapses to one of Figure 3's bad join orders.
2. Heavy-key rectangles in the binary join: a plain hash join (no heavy
   handling) melts under skew; the rectangle allocation keeps the load at
   the sqrt(OUT/p) bound.
3. Planner vs decomposition: on the doubled trap even the *best* priced
   Yannakakis order stays OUT-scale — planning cannot replace the
   Section 4.2 algorithm, matching the paper's argument for it.
"""

from __future__ import annotations

import math

import pytest

from _common import print_table
from repro.core.binary_join import binary_join
from repro.core.planner import best_yannakakis_plan
from repro.core.runner import mpc_join
from repro.core.yannakakis import yannakakis_mpc
from repro.data.generators import line_trap_instance
from repro.data.instance import Instance
from repro.data.relation import Relation
from repro.mpc import Cluster, distribute_instance
from repro.query import catalog

P = 8


def _tau_ablation():
    """Emulate tau extremes via the equivalent fixed join orders."""
    inst = line_trap_instance(3, 3000, 120000, doubled=True)
    rows = []
    # tau -> inf: every B value light -> Q2's order (R1 x R2) x R3 only.
    res = mpc_join(inst.query, inst, p=P, algorithm="yannakakis",
                   plan=(("R1", "R2"), "R3"))
    rows.append(["tau=inf (all light)", res.report.load])
    # tau -> 0: every B value heavy -> Q1's order R1 x (R2 x R3) only.
    res = mpc_join(inst.query, inst, p=P, algorithm="yannakakis",
                   plan=("R1", ("R2", "R3")))
    rows.append(["tau=0 (all heavy)", res.report.load])
    res = mpc_join(inst.query, inst, p=P, algorithm="line3")
    rows.append(["tau=sqrt(OUT/IN) (Sec 4.2)", res.report.load])
    return rows, inst


def _skew_ablation():
    """Binary join with one hot key whose degree >> IN/p.

    Plain hashing must land the whole hot key (d1 + d2 tuples) on one
    server; the rectangle allocation splits it into balanced chunks.  Run
    at p = 32 so the hot degree dominates the IN/p floor.
    """
    p = 32
    q = catalog.binary_join()
    hot_d1, hot_d2, light = 12000, 50, 1000
    rows1 = [(f"a{i}", "hot") for i in range(hot_d1)] + [
        (f"a{i}", f"b{i}") for i in range(light)
    ]
    rows2 = [("hot", f"c{i}") for i in range(hot_d2)] + [
        (f"b{i}", f"c{i}") for i in range(light)
    ]
    inst = Instance(
        q,
        {
            "R1": Relation("R1", ("A", "B"), rows1),
            "R2": Relation("R2", ("B", "C"), rows2),
        },
    )

    out = []
    cl = Cluster(p)
    g = cl.root_group()
    rels = distribute_instance(inst, g)
    binary_join(g, rels["R1"], rels["R2"])
    out.append(["heavy rectangles (lib)", cl.snapshot().load])

    # Ablated: plain hash partitioning by the join key.
    cl = Cluster(p)
    g = cl.root_group()
    rels = distribute_instance(inst, g)
    rels["R1"].rehash(g, ("B",), "hash")
    rels["R2"].rehash(g, ("B",), "hash")
    out.append(["plain hash join (ablated)", cl.snapshot().load])
    out_size = hot_d1 * hot_d2 + light
    bound = inst.input_size / p + math.sqrt(out_size / p)
    return out, bound


def _planner_ablation():
    inst = line_trap_instance(3, 2000, 30000, doubled=True)
    cl = Cluster(P)
    g = cl.root_group()
    rels = distribute_instance(inst, g)
    choice = best_yannakakis_plan(g, inst.query, rels)

    cl2 = Cluster(P)
    g2 = cl2.root_group()
    rels2 = distribute_instance(inst, g2)
    yannakakis_mpc(g2, inst.query, rels2, plan=choice.plan)
    planned = cl2.snapshot().load

    res = mpc_join(inst.query, inst, p=P, algorithm="line3")
    return [
        ["planned Yannakakis (best order)", planned],
        ["line3 decomposition", res.report.load],
    ], inst


@pytest.mark.benchmark(group="ablations")
def test_ablation_tau_extremes(benchmark):
    (rows, inst) = benchmark.pedantic(_tau_ablation, rounds=1, iterations=1)
    print_table(
        f"Ablation: heavy/light threshold on the doubled trap "
        f"(IN={inst.input_size}, OUT={inst.output_size()})",
        ["variant", "load"],
        rows,
    )
    loads = dict((r[0], r[1]) for r in rows)
    full = loads["tau=sqrt(OUT/IN) (Sec 4.2)"]
    assert full < 0.5 * loads["tau=inf (all light)"]
    assert full < 0.5 * loads["tau=0 (all heavy)"]


@pytest.mark.benchmark(group="ablations")
def test_ablation_heavy_rectangles(benchmark):
    (rows, bound) = benchmark.pedantic(_skew_ablation, rounds=1, iterations=1)
    print_table(
        "Ablation: binary join under one hot key (half the output)",
        ["variant", "load"],
        rows,
    )
    loads = dict((r[0], r[1]) for r in rows)
    # Plain hashing piles the hot key's tuples onto one server.
    assert loads["plain hash join (ablated)"] > 2 * loads["heavy rectangles (lib)"]
    assert loads["heavy rectangles (lib)"] <= 12 * bound


@pytest.mark.benchmark(group="ablations")
def test_ablation_planner_vs_decomposition(benchmark):
    (rows, inst) = benchmark.pedantic(_planner_ablation, rounds=1, iterations=1)
    print_table(
        f"Ablation: best planned order vs Sec 4.2 on the doubled trap "
        f"(OUT={inst.output_size()})",
        ["variant", "load"],
        rows,
    )
    loads = dict((r[0], r[1]) for r in rows)
    assert loads["line3 decomposition"] < loads["planned Yannakakis (best order)"]
