"""EXP-T4/C1 — Theorem 4 and Corollary 1: output-optimal r-hierarchical loads.

Sweeps OUT on the Lemma 1 extremal construction (the instance that makes
Theorem 4's closed form tight) and on smooth star workloads, comparing the
measured load of the Section 3.2 algorithm against
``IN/p^{1/max(1,k*-1)} + (OUT/p)^{1/k*}`` and the cleaner Corollary 1 form
``IN/p + sqrt(OUT/p)``.
"""

from __future__ import annotations

import pytest

from _common import print_table, run_join
from repro.data.generators import star_instance
from repro.data.hard_instances import rhier_extremal
from repro.query import catalog
from repro.theory.bounds import corollary1_bound, k_star, theorem4_bound

P = 8


def _sweep():
    rows = []
    q = catalog.cartesian_product(3)
    in_size = 900
    for out_target in (int(in_size ** 1.5), in_size ** 2 // 4, in_size ** 2 * 40):
        inst = rhier_extremal(q, in_size, out_target)
        out = inst.output_size()
        m = run_join(q, inst, P, "rhierarchical")
        t4 = theorem4_bound(inst.input_size, out, P)
        c1 = corollary1_bound(inst.input_size, out, P)
        rows.append(
            ["extremal x3", k_star(inst.input_size, out), m["in"], out,
             m["load"], t4, m["load"] / t4, c1]
        )
    for fanout in (4, 10, 22):
        inst = star_instance(3, 6, fanout)
        out = inst.output_size()
        m = run_join(inst.query, inst, P, "rhierarchical")
        t4 = theorem4_bound(inst.input_size, out, P)
        c1 = corollary1_bound(inst.input_size, out, P)
        rows.append(
            ["star3", k_star(inst.input_size, out), m["in"], out,
             m["load"], t4, m["load"] / t4, c1]
        )
    return rows


@pytest.mark.benchmark(group="thm4")
def test_thm4_closed_form(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_table(
        f"Theorem 4 / Corollary 1: r-hier output-optimal bound (p={P})",
        ["workload", "k*", "IN", "OUT", "load", "Thm4 bound", "ratio", "Cor1 bound"],
        rows,
    )
    for row in rows:
        workload, _k, _in, _out, load, t4, ratio, c1 = row
        assert ratio < 60, row
        # Corollary 1 upper-bounds Theorem 4's form up to constants.
        assert t4 <= 3 * c1 + 1
    # The extremal sweep exercises growing k*.
    kstars = [r[1] for r in rows if r[0] == "extremal x3"]
    assert max(kstars) >= 2
