"""EXP-T1T2 — Theorems 1-2: BinHC is instance-optimal up to polylog factors.

On tall-flat instances (Theorem 1) and dangling-free r-hierarchical
instances (Theorem 2) the one-round BinHC load stays within a polylog
factor of IN/p + L_instance; the Koutris-Suciu barrier appears when
dangling tuples are injected (one round suffers, the multi-round variant
recovers).
"""

from __future__ import annotations

import math

import pytest

from _common import print_table, run_join
from repro.data.generators import add_dangling, forest_instance, star_instance
from repro.query import catalog
from repro.theory.bounds import l_binhc, l_instance

P = 8


def _theorem12():
    rows = []
    cases = [
        ("Q1 tall-flat", forest_instance(catalog.q1_tall_flat(), 3, skew=2.0)),
        ("star3 (r-hier)", star_instance(3, 10, 5)),
        ("Q2 hierarchical", forest_instance(catalog.q2_hierarchical(), 4, skew=3.0)),
    ]
    for name, inst in cases:
        q = inst.query
        bound = inst.input_size / P + l_instance(q, inst, P)
        lb_formula = l_binhc(q, inst, P)
        m = run_join(q, inst, P, "binhc")
        rows.append(
            [name, m["in"], m["out"], bound, lb_formula,
             m["load"], m["load"] / bound]
        )
    return rows


def _dangling_barrier():
    base = star_instance(3, 6, 6)
    rows = []
    for extra in (0, 200, 800):
        inst = add_dangling(base, extra, seed=9) if extra else base
        one = run_join(inst.query, inst, P, "binhc")
        multi = run_join(inst.query, inst, P, "binhc-multiround")
        rows.append([extra * 3, one["load"], multi["load"]])
    return rows


@pytest.mark.benchmark(group="thm12")
def test_thm1_thm2_polylog_ratio(benchmark):
    rows = benchmark.pedantic(_theorem12, rounds=1, iterations=1)
    print_table(
        f"Theorems 1-2: BinHC vs IN/p + L_instance (p={P})",
        ["workload", "IN", "OUT", "L_inst bound", "L_BinHC formula",
         "binhc load", "ratio"],
        rows,
    )
    for name, in_size, _out, bound, lb_formula, load, ratio in rows:
        polylog = math.log2(max(4, in_size)) ** 2
        # Theorem 1/2 statement: formula within O(1) of L_instance ...
        assert lb_formula <= 8 * bound + 1, name
        # ... and the executed load within polylog of the bound.
        assert load <= 10 * polylog * bound + 30 * P, name


@pytest.mark.benchmark(group="thm12")
def test_koutris_suciu_dangling_barrier(benchmark):
    rows = benchmark.pedantic(_dangling_barrier, rounds=1, iterations=1)
    print_table(
        "Section 3.1 remark: dangling tuples vs one-round BinHC",
        ["dangling tuples", "one-round load", "multi-round load"],
        rows,
    )
    # With heavy dangling injection, cleaning up first is no worse than ~2x
    # (reducer cost) and the one-round load keeps growing with garbage.
    assert rows[-1][1] > rows[0][1]
    assert rows[-1][2] <= rows[-1][1] * 2
