"""EXP-T6/C2/C3 — Theorem 6: the line-3 lower bound and its crossovers.

Three reproductions on the Figure 4 random hard instances:

1. The counting core of the proof: the empirical J(L) estimator needs load
   ~ the Theorem 6 formula before p * J(L) can reach OUT.
2. Upper-bound consistency: every algorithm's measured load is at least
   the (constant-free) lower-bound formula, and the Section 4.2 algorithm
   sits within a polylog factor — output-optimality for OUT <= p * IN.
3. The crossover: past OUT ~ p * IN the worst-case-optimal IN/sqrt(p)
   algorithm takes over (its load stops depending on OUT), and the
   Corollary 2 gap to L_instance = O(IN/p) rules out instance-optimality.
"""

from __future__ import annotations

import math

import pytest

from _common import print_table, run_join
from repro.data.hard_instances import line3_random_hard
from repro.theory.bounds import l_instance
from repro.theory.lower_bounds import (
    estimate_j_line3,
    line3_lower_bound,
    min_load_from_j,
)

P = 8
IN_SIZE = 3000


def _counting_core():
    rows = []
    for out_mult in (2, 8, 24):
        inst = line3_random_hard(IN_SIZE, out_mult * IN_SIZE, seed=17)
        out = inst.output_size()
        lb = line3_lower_bound(inst.input_size, out, P)
        need = min_load_from_j(
            out, P,
            lambda load: estimate_j_line3(inst, load, seed=3, trials=10),
            hi=inst.input_size,
        )
        rows.append([inst.input_size, out, lb, need, need / max(1.0, lb)])
    return rows


def _upper_bounds():
    rows = []
    for out_mult in (2, 8, 24):
        inst = line3_random_hard(IN_SIZE, out_mult * IN_SIZE, seed=18)
        out = inst.output_size()
        lb = line3_lower_bound(inst.input_size, out, P)
        for algo in ("line3", "yannakakis", "wc-line3"):
            m = run_join(inst.query, inst, P, algo)
            rows.append([out, algo, m["load"], lb, m["load"] / max(1.0, lb)])
    return rows


@pytest.mark.benchmark(group="thm6")
def test_thm6_counting_argument(benchmark):
    rows = benchmark.pedantic(_counting_core, rounds=1, iterations=1)
    print_table(
        f"Theorem 6 counting core: load needed for p*J(L) >= OUT (p={P})",
        ["IN", "OUT", "Thm6 formula", "empirical L*", "L*/formula"],
        rows,
    )
    for _in, _out, lb, need, ratio in rows:
        # The empirical requirement must not sit far *below* the formula
        # (the estimator may exceed it: greedy loading is weaker than the
        # adversary's optimum, making L* conservative upward).
        assert need >= 0.2 * lb


@pytest.mark.benchmark(group="thm6")
def test_thm6_upper_bound_consistency(benchmark):
    rows = benchmark.pedantic(_upper_bounds, rounds=1, iterations=1)
    print_table(
        f"Theorem 6 vs upper bounds on Figure-4 instances (p={P})",
        ["OUT", "algorithm", "load", "Thm6 LB", "load/LB"],
        rows,
    )
    for _out, algo, load, lb, ratio in rows:
        assert load >= 0.8 * lb, (algo, load, lb)
    line3_ratios = [r[4] for r in rows if r[1] == "line3"]
    polylog = math.log2(IN_SIZE) ** 2
    assert max(line3_ratios) <= 3 * polylog


def _crossover():
    rows = []
    for out_mult in (1, 4, P, 4 * P):
        inst = line3_random_hard(IN_SIZE, out_mult * IN_SIZE, seed=19)
        out = inst.output_size()
        new = run_join(inst.query, inst, P, "line3")
        wc = run_join(inst.query, inst, P, "wc-line3")
        li = l_instance(inst.query, inst, P)
        rows.append(
            [out / inst.input_size, out, new["load"], wc["load"], li,
             "wc" if wc["load"] < new["load"] else "line3"]
        )
    return rows


@pytest.mark.benchmark(group="thm6")
def test_corollary2_crossover(benchmark):
    rows = benchmark.pedantic(_crossover, rounds=1, iterations=1)
    print_table(
        f"Corollary 2 regime: OUT sweep to p*IN and beyond (p={P})",
        ["OUT/IN", "OUT", "line3 load", "wc load", "L_instance", "winner"],
        rows,
    )
    # The worst-case algorithm's load is flat in OUT...
    wc_loads = [r[3] for r in rows]
    assert max(wc_loads) <= 2.5 * min(wc_loads)
    # ...and by OUT = 4p*IN it wins (the Theorem 6 crossover).
    assert rows[-1][5] == "wc"
    # Corollary 2's gap: at OUT ~ p*IN every algorithm's load is far above
    # L_instance (which stays ~IN/p-ish): no instance-optimal algorithm.
    big = [r for r in rows if r[0] >= P][0]
    assert min(big[2], big[3]) > 2 * big[4]
