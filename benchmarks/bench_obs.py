"""Observability overhead benchmark: tracing must be near-free when off.

A mixed serving workload runs through three configurations of the same
persistent :class:`repro.engine.Engine` session (result cache off, so
every warm query actually executes against the backend):

* **default** — observability on (the shipped default): the metrics
  registry records per-query counters/histograms and every execute
  carries the NULL_SPAN/WireMeter plumbing, but no tracer is attached;
* **bare** — ``observe=False``: the registry records nothing, the same
  code path otherwise;
* **traced** — a live :class:`repro.obs.Tracer` writing JSONL spans.

Parity is a hard gate: outputs and the full LoadReport must be
bit-identical across all three configurations on every workload query,
or nothing is written and the process exits non-zero.  The headline
number is the **disabled-tracing overhead** — best default warm pass vs
best bare warm pass — gated at <=3% (with a small absolute floor so
sub-millisecond noise cannot flip the verdict).  The traced-on ratio is
reported for context but not gated.

Run:  python benchmarks/bench_obs.py [--quick] [--check]
          [--backend NAME] [output.json]
Writes ``BENCH_obs.json`` (repo root by default).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from _common import finish_payload, latency_summary

from repro.data.generators import line_trap_instance, random_instance
from repro.engine import Engine
from repro.mpc import shutdown_backends
from repro.obs import SpanSink, Tracer
from repro.obs.check import validate_trace_lines
from repro.query import catalog

P = 8

#: Overhead gate: best default pass must be within 3% of the bare pass,
#: or within 2ms absolute (whichever is looser) so timer jitter on a
#: fast quick run cannot fail the gate spuriously.
OVERHEAD_RATIO = 1.03
OVERHEAD_FLOOR_SECONDS = 0.002


def _base_relations(quick: bool) -> dict:
    n = 1000 if quick else 5000
    trap = line_trap_instance(3, n, 2 * n, doubled=True)
    binary = random_instance(catalog.binary_join(), n, max(8, n // 40), seed=7)
    rels = dict(trap.relations)
    rels.update({f"S{i}": r for i, (_n, r) in enumerate(binary.relations.items(), 1)})
    return rels


WORKLOAD = (
    "Q(A,B,C,D) :- R1(A,B), R2(B,C), R3(C,D)",
    "Q(A,B,C) :- S1(A,B), S2(B,C)",
    "Q(B; count) :- R1(A,B), R2(B,C), R3(C,D)",
)


def _payload(res):
    if res.metrics.kind == "join":
        return {"attrs": res.relation.attrs, "parts": res.relation.parts}
    return {
        "scalar": res.scalar,
        "rows": None if res.relation is None else list(res.relation.rows),
        "annotations": (
            None if res.relation is None
            else list(res.relation.annotations or ())
        ),
    }


def _engine(relations: dict, backend: str, **kwargs) -> Engine:
    engine = Engine(p=P, backend=backend, result_cache=False, **kwargs)
    for name, rel in relations.items():
        engine.register(rel, name=name)
    return engine


def _warm_pass(engine: Engine, reps: int, inner: int):
    """Best warm-pass wall time + per-query latency samples.

    Each timed pass executes the workload ``inner`` times so a pass is
    long enough (tens of ms in full mode) for the overhead *ratio* to
    measure the instruments rather than timer jitter.
    """
    best = float("inf")
    samples: list[float] = []
    results = None
    for _ in range(reps):
        t0 = time.perf_counter()
        for _ in range(inner):
            results = [engine.execute(text) for text in WORKLOAD]
        best = min(best, time.perf_counter() - t0)
        samples.extend(r.metrics.wall_seconds for r in results)
    return best, samples, results


def _bench_backend(backend: str, quick: bool, reps: int, trace_path: Path) -> dict:
    inner = 3 if quick else 20
    relations = _base_relations(quick)
    default = _engine(relations, backend)
    bare = _engine(relations, backend, observe=False)
    sink = SpanSink(path=str(trace_path))
    traced = _engine(relations, backend, tracer=Tracer(sink))

    t0 = time.perf_counter()
    cold = [default.execute(text) for text in WORKLOAD]
    cold_seconds = time.perf_counter() - t0
    ref = [(_payload(r), r.report.as_dict()) for r in cold]

    # ---- parity gate BEFORE any timing: outputs + full ledger identical
    for mode, engine in (("bare", bare), ("traced", traced)):
        for text, (ref_payload, ref_ledger) in zip(WORKLOAD, ref):
            res = engine.execute(text)
            if _payload(res) != ref_payload:
                raise AssertionError(f"{mode} outputs diverge on {text!r}")
            if res.report.as_dict() != ref_ledger:
                raise AssertionError(f"{mode} ledger diverges on {text!r}")

    default_s, default_samples, default_res = _warm_pass(default, reps, inner)
    bare_s, bare_samples, _ = _warm_pass(bare, reps, inner)
    traced_s, _, traced_res = _warm_pass(traced, reps, inner)

    # ---- warm parity too: timing passes must not have changed answers
    for mode, results in (("default", default_res), ("traced", traced_res)):
        for text, res, (ref_payload, ref_ledger) in zip(WORKLOAD, results, ref):
            if _payload(res) != ref_payload or res.report.as_dict() != ref_ledger:
                raise AssertionError(f"{mode} warm divergence on {text!r}")

    sink.close()
    lines = trace_path.read_text().splitlines()
    errors = validate_trace_lines(lines)
    if errors:
        raise AssertionError(f"traced run emitted invalid spans: {errors[:3]}")

    budget = max(OVERHEAD_RATIO * bare_s, bare_s + OVERHEAD_FLOOR_SECONDS)
    row = {
        "backend": backend,
        "p": P,
        "queries": len(WORKLOAD),
        "executions_per_pass": inner * len(WORKLOAD),
        "cold_seconds": round(cold_seconds, 4),
        "default_warm_seconds": round(default_s, 4),
        "bare_warm_seconds": round(bare_s, 4),
        "traced_warm_seconds": round(traced_s, 4),
        "disabled_overhead_ratio": (
            round(default_s / bare_s, 4) if bare_s else None
        ),
        "traced_overhead_ratio": (
            round(traced_s / bare_s, 4) if bare_s else None
        ),
        "overhead_within_budget": bool(default_s <= budget),
        "spans_emitted": len(lines),
        "latency_default": latency_summary(default_samples),
        "latency_bare": latency_summary(bare_samples),
        "parity_verified": True,
    }
    print(
        f"{backend:13s} warm wall: default {default_s:7.4f}s vs bare "
        f"{bare_s:7.4f}s ({row['disabled_overhead_ratio']}x, "
        f"{'ok' if row['overhead_within_budget'] else 'OVER BUDGET'})  "
        f"traced {traced_s:7.4f}s ({row['traced_overhead_ratio']}x, "
        f"{len(lines)} spans)  parity ok"
    )
    return row


def bench(quick: bool = False, backends: tuple[str, ...] = ()) -> dict:
    reps = 3 if quick else 6
    backends = backends or ("serial", "multiprocess")
    results = []
    for b in backends:
        trace_path = Path(__file__).parent.parent / f".bench_obs_{b}.jsonl"
        try:
            results.append(_bench_backend(b, quick, reps, trace_path))
        finally:
            trace_path.unlink(missing_ok=True)
    shutdown_backends()
    return {
        "p": P,
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "workload": list(WORKLOAD),
        "note": (
            "Warm executions with the result cache off under three "
            "observability configurations: default (registry on, no "
            "tracer), bare (observe=False), traced (live JSONL Tracer). "
            "Outputs and full LoadReports are bit-identical across all "
            "configurations by the parity gate before any timing; the "
            "disabled-tracing overhead (default vs bare) is gated at "
            "<=3% (with a 2ms absolute floor), the traced ratio is "
            "reported ungated. Latency percentiles come from the same "
            "repro.obs.percentiles the engine serves."
        ),
        "overhead_ratio_budget": OVERHEAD_RATIO,
        "overhead_floor_seconds": OVERHEAD_FLOOR_SECONDS,
        "backends": results,
    }


def main(argv: list[str]) -> None:
    quick = "--quick" in argv
    check = "--check" in argv
    backends: tuple[str, ...] = ()
    if "--backend" in argv:
        backends = (argv[argv.index("--backend") + 1],)
        argv = [a for i, a in enumerate(argv)
                if a != "--backend" and argv[i - 1] != "--backend"]
    paths = [a for a in argv if not a.startswith("-")]
    out_path = (
        Path(paths[0]) if paths
        else Path(__file__).parent.parent / "BENCH_obs.json"
    )
    data = finish_payload(bench(quick=quick, backends=backends))
    out_path.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {out_path}")
    if check:
        bad = [b for b in data["backends"] if not b["overhead_within_budget"]]
        if bad:
            print(
                "FAIL: disabled-tracing overhead exceeded the <=3% budget on "
                + ", ".join(
                    f"{b['backend']} ({b['disabled_overhead_ratio']}x)"
                    for b in bad
                )
            )
            raise SystemExit(1)
        print(
            "check ok: parity gates passed and disabled-tracing overhead "
            "is within the <=3% budget on every backend"
        )


if __name__ == "__main__":
    main(sys.argv[1:])
