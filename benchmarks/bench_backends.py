"""Backend wall-clock benchmark: SerialBackend vs MultiprocessBackend.

Measures the execution-backend seam on serving-style workloads: each
"request" builds a fresh cluster and fresh distributed relations (exactly
what a query-serving process does per request) and runs either the Section
2 primitive mix or a full join.  The serial backend recomputes every
per-server decorate+sort from scratch on each request — the substrate's
sorted-run cache is keyed by object identity and cannot span requests.
The multiprocess backend's workers memoize those computations
content-addressed, so a hot query's local sorts are served from
worker-local caches; on multi-core hosts the remaining cold work also
fans out across workers.

Both backends must produce identical outputs and identical ledgers on
every workload — the script refuses to write results otherwise.  Reported
timings:

* ``cold`` — first request (worker start + cache population included),
* ``warm`` — best of the following requests (the serving steady state).

Run:  python benchmarks/bench_backends.py [--quick] [output.json]
Writes ``BENCH_backends.json`` (repo root by default).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from _common import finish_payload

from repro.core.runner import mpc_join
from repro.data.generators import line_trap_instance
from repro.data.relation import Relation
from repro.mpc import Cluster, distribute_relation, shutdown_backends
from repro.mpc.primitives import attach_degrees, count_by_key, number_rows

P = 8


def _mixed_rows(n: int) -> list[tuple]:
    """Rows with a heterogeneous key column (the expensive encoding path)."""
    rows = []
    for i in range(n):
        k = i % 997
        key = f"user{k}" if k % 3 else k
        rows.append((key, i % 31, f"payload{i % 101}"))
    return rows


def _primitive_serving(n: int):
    """The Section-2 primitive mix a fresh request would issue, at p=8."""
    rel_ram = Relation("R", ("A", "B", "C"), _mixed_rows(n))

    def request(backend: str):
        cluster = Cluster(P, backend=backend)
        group = cluster.root_group()
        rel = distribute_relation(rel_ram, group)
        out = [
            count_by_key(group, rel, ("A",), "cnt"),
            attach_degrees(group, rel, ("A",), "deg"),
            number_rows(group, rel, ("B",), "num"),
        ]
        return out, cluster.snapshot()

    return request


def _join_serving(in_size: int, out_size: int):
    """A full line-3 join served repeatedly (fresh cluster per request)."""
    inst = line_trap_instance(3, in_size, out_size, doubled=True)

    def request(backend: str):
        res = mpc_join(inst.query, inst, p=P, algorithm="line3", backend=backend)
        return (res.relation.attrs, res.relation.parts), res.report

    return request


def _time_backend(request, backend: str, reps: int):
    t0 = time.perf_counter()
    out, report = request(backend)
    cold = time.perf_counter() - t0
    warm = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        out, report = request(backend)
        warm = min(warm, time.perf_counter() - t0)
    return cold, warm, out, report


def bench(quick: bool = False) -> dict:
    if quick:
        workloads = {
            "primitive_serving_p8": (_primitive_serving(8000), 2),
            "join_serving_p8": (_join_serving(1500, 9000), 2),
        }
    else:
        workloads = {
            "primitive_serving_p8": (_primitive_serving(60000), 3),
            "join_serving_p8": (_join_serving(6000, 90000), 3),
        }

    results = []
    for name, (request, reps) in workloads.items():
        cold_s, warm_s, out_s, rep_s = _time_backend(request, "serial", reps)
        cold_m, warm_m, out_m, rep_m = _time_backend(request, "multiprocess", reps)
        outputs_equal = out_s == out_m
        ledger_equal = rep_s.as_dict() == rep_m.as_dict()
        if not (outputs_equal and ledger_equal):
            raise AssertionError(
                f"backend divergence on {name!r}: outputs_equal="
                f"{outputs_equal} ledger_equal={ledger_equal}"
            )
        results.append(
            {
                "workload": name,
                "p": P,
                "serial_cold_seconds": round(cold_s, 4),
                "serial_warm_seconds": round(warm_s, 4),
                "multiprocess_cold_seconds": round(cold_m, 4),
                "multiprocess_warm_seconds": round(warm_m, 4),
                "warm_speedup": round(warm_s / warm_m, 3),
                "cold_speedup": round(cold_s / cold_m, 3),
                "multiprocess_wins_warm": warm_m < warm_s,
                "ledger": {
                    "load": rep_s.load,
                    "step_max": rep_s.max_step_load,
                    "steps": rep_s.steps,
                },
                "outputs_equal": outputs_equal,
                "ledger_equal": ledger_equal,
            }
        )
        print(
            f"{name:22s} serial warm {warm_s:7.3f}s  multiprocess warm "
            f"{warm_m:7.3f}s  speedup {warm_s / warm_m:5.2f}x  "
            f"(cold {cold_s:5.2f}s vs {cold_m:5.2f}s)  parity ok"
        )
    shutdown_backends()
    return {
        "p": P,
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "note": (
            "warm = serving steady state (best of repeated fresh-request "
            "runs); the multiprocess win comes from worker-local "
            "content-addressed memoization of per-server decorate+sort, "
            "plus parallel fan-out when cpu_count > 1"
        ),
        "workloads": results,
    }


def main(argv: list[str]) -> None:
    quick = "--quick" in argv
    paths = [a for a in argv if not a.startswith("-")]
    out_path = (
        Path(paths[0]) if paths
        else Path(__file__).parent.parent / "BENCH_backends.json"
    )
    data = finish_payload(bench(quick=quick))
    out_path.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {out_path}")
    wins = [w for w in data["workloads"] if w["multiprocess_wins_warm"]]
    if not wins:
        print("WARNING: multiprocess beat serial on no workload")


if __name__ == "__main__":
    main(sys.argv[1:])
