"""EXP-P1 — Section 2: the MPC primitives run with linear load.

Doubles IN at fixed p and checks each primitive's load doubles too
(stays ~ c * IN/p), including under heavy skew — the property every
algorithm in the paper builds on.
"""

from __future__ import annotations

import random

import pytest

from _common import print_table
from repro.data.relation import Relation
from repro.mpc import Cluster, distribute_relation
from repro.mpc.packing import parallel_packing
from repro.mpc.primitives import (
    multi_numbering,
    multi_search,
    sample_sort,
    semi_join,
    sum_by_key,
)

P = 8
SIZES = [4000, 8000, 16000]


def _loads_for(n: int) -> dict[str, int]:
    rng = random.Random(n)
    out: dict[str, int] = {}

    def fresh():
        cl = Cluster(P)
        return cl, cl.root_group()

    # Half uniform keys, half one heavy key: the skew-proofness check.
    keys = [rng.randrange(n // 4) for _ in range(n // 2)] + [0] * (n // 2)
    pairs = [(k, 1) for k in keys]
    parts = [pairs[i::P] for i in range(P)]

    cl, g = fresh()
    sample_sort(g, parts, lambda kv: kv[0], "sort")
    out["sample_sort"] = cl.snapshot().load

    cl, g = fresh()
    sum_by_key(g, parts)
    out["sum_by_key"] = cl.snapshot().load

    cl, g = fresh()
    multi_numbering(g, parts)
    out["multi_numbering"] = cl.snapshot().load

    cl, g = fresh()
    ys = [(v, v) for v in range(0, n, 7)]
    multi_search(g, parts, [ys[i::P] for i in range(P)])
    out["multi_search"] = cl.snapshot().load

    cl, g = fresh()
    r1 = Relation("R1", ("A", "B"), [(i, i % 64) for i in range(n)])
    r2 = Relation("R2", ("B", "C"), [(b, 0) for b in range(32)])
    semi_join(g, distribute_relation(r1, g), distribute_relation(r2, g))
    out["semi_join"] = cl.snapshot().load

    cl, g = fresh()
    items = [(i, rng.uniform(0.01, 1.0)) for i in range(n)]
    parallel_packing(g, [items[i::P] for i in range(P)])
    out["parallel_packing"] = cl.snapshot().load
    return out


@pytest.mark.benchmark(group="primitives")
def test_primitives_linear_load(benchmark):
    results = benchmark.pedantic(
        lambda: {n: _loads_for(n) for n in SIZES}, rounds=1, iterations=1
    )
    prims = sorted(results[SIZES[0]])
    rows = []
    for prim in prims:
        loads = [results[n][prim] for n in SIZES]
        rows.append([prim, *loads, loads[-1] / max(1, loads[0])])
    print_table(
        f"Section 2 primitives: load vs IN (p={P}, IN = {SIZES})",
        ["primitive", *[f"IN={n}" for n in SIZES], "x4 IN -> load"],
        rows,
    )
    for prim in prims:
        l0 = results[SIZES[0]][prim]
        l2 = results[SIZES[-1]][prim]
        if prim == "parallel_packing":
            continue  # O(p) coordination only: flat load by design
        # Linear: 4x IN gives <= ~6x load and >= ~2x (no hidden blowup
        # and genuinely data-proportional).
        assert l2 <= 6.5 * l0 + 20 * P, prim
        assert l2 >= 1.6 * l0, prim
    # Packing never moves data items: tiny load at every size.
    assert all(results[n]["parallel_packing"] <= 6 * P for n in SIZES)
