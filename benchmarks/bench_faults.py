"""Recovery-overhead benchmark: warm serving throughput under injected kills.

Measures the price of the DESIGN.md section 8 degradation ladder: a warm
engine serving the binary-join workload on a supervised multiprocess
pool, with the ``chaos`` wrapper killing workers at 0% / 5% / 20% of
dispatched rounds.  Every fault is absorbed below the engine (respawn →
resubmit → inline), so the only observable cost is wall-clock — which is
exactly what this script reports, as warm queries/second per kill rate.

Parity is gated before any timing: at every rate, outputs and the full
LoadReport must be bit-identical to the fault-free serial reference
(determinism is the recovery oracle), and the injector's counters must
show that nonzero rates really injected.  The script refuses to write
results otherwise.

Run:  python benchmarks/bench_faults.py [--quick] [--check] [output.json]
Writes ``BENCH_faults.json`` (repo root by default).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from _common import finish_payload

from repro.data.generators import random_instance
from repro.engine import Engine
from repro.mpc.backends import FaultInjectingBackend, MultiprocessBackend
from repro.query import catalog

P = 8
QUERY = "Q(A,B,C) :- R1(A,B), R2(B,C)"
KILL_RATES = (0.0, 0.05, 0.20)


def _relations(n: int, dom: int):
    inst = random_instance(catalog.binary_join(), n, dom, seed=7)
    return dict(inst.relations)


def _payload(res):
    return {
        "rows": sorted(res.rows()),
        "ledger": res.report.as_dict(),
    }


def _engine(relations, backend):
    # result_cache off: a warm query must re-execute (plan replay), so
    # every timed request actually crosses the backend and can be hit.
    engine = Engine(p=P, backend=backend, result_cache=False)
    for name, rel in relations.items():
        engine.register(rel, name=name)
    return engine


def _bench_rate(relations, reference, rate: float, warm_reps: int) -> dict:
    chaos = FaultInjectingBackend(
        inner=MultiprocessBackend(
            workers=2, round_timeout=2.0, backoff_base=0.0
        ),
        seed=1, rate=rate, kinds=("kill",),
    )
    try:
        engine = _engine(relations, chaos)
        # Parity gate: cold + one warm execution, checked against the
        # fault-free serial reference before a single timing is taken.
        for _ in range(2):
            got = _payload(engine.execute(QUERY))
            if got != reference:
                raise AssertionError(
                    f"divergence at kill rate {rate}: recovery changed "
                    "outputs or ledger"
                )
        t0 = time.perf_counter()
        for _ in range(warm_reps):
            engine.execute(QUERY)
        elapsed = time.perf_counter() - t0
        stats = chaos.fault_stats()
        if rate > 0 and not stats["injected_kill"]:
            raise AssertionError(
                f"kill rate {rate} injected nothing over "
                f"{warm_reps + 2} executions — nothing was measured"
            )
        return {
            "kill_rate": rate,
            "warm_reps": warm_reps,
            "warm_seconds": round(elapsed, 4),
            "warm_qps": round(warm_reps / elapsed, 2),
            "injected_kills": stats["injected_kill"],
            "worker_deaths": stats["worker_deaths"],
            "respawns": stats["respawns"],
            "resubmitted_jobs": stats["resubmitted_jobs"],
            "inline_degradations": stats["inline_degradations"],
            "parity_ok": True,
        }
    finally:
        chaos.close()


def bench(quick: bool = False) -> dict:
    n, dom, warm_reps = (400, 24, 12) if quick else (4000, 64, 40)
    relations = _relations(n, dom)
    serial = _engine(relations, "serial")
    reference = _payload(serial.execute(QUERY))

    results = [
        _bench_rate(relations, reference, rate, warm_reps)
        for rate in KILL_RATES
    ]
    baseline_qps = results[0]["warm_qps"]
    for row in results:
        row["overhead_vs_fault_free"] = round(
            baseline_qps / row["warm_qps"], 3
        )
        print(
            f"kill rate {row['kill_rate']:4.0%}: {row['warm_qps']:8.1f} "
            f"q/s  ({row['injected_kills']} kills, "
            f"{row['respawns']} respawns, "
            f"{row['resubmitted_jobs']} jobs resubmitted, "
            f"{row['overhead_vs_fault_free']:.2f}x slower than fault-free)"
        )
    return {
        "p": P,
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "query": QUERY,
        "input_rows": n,
        "note": (
            "warm qps at injected worker-kill rates; parity with the "
            "fault-free serial reference gated before timing — recovery "
            "may cost wall-clock only, never outputs or ledgers"
        ),
        "rates": results,
    }


def main(argv: list[str]) -> None:
    quick = "--quick" in argv
    check = "--check" in argv
    paths = [a for a in argv if not a.startswith("-")]
    out_path = (
        Path(paths[0]) if paths
        else Path(__file__).parent.parent / "BENCH_faults.json"
    )
    data = finish_payload(bench(quick=quick))
    out_path.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {out_path}")
    if check:
        # bench() already gated parity and nonzero injection; assert the
        # invariants survived into the artifact so CI fails loudly on a
        # silent format regression.
        assert all(r["parity_ok"] for r in data["rates"])
        assert all(
            r["injected_kills"] > 0
            for r in data["rates"] if r["kill_rate"] > 0
        )
        print("check ok: parity + injection gates held at every kill rate")


if __name__ == "__main__":
    main(sys.argv[1:])
