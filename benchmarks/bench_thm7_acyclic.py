"""EXP-T7/T8 — Theorems 7-8: general acyclic joins.

OUT sweeps on longer chains and tree queries for the upper bound
(load ~ IN/p + sqrt(IN*OUT)/p), plus the Theorem 8 transfer: the Lemma 2
embedding plants the line-3 hard instance inside any acyclic
non-r-hierarchical query, and measured loads respect the transferred
lower-bound formula.
"""

from __future__ import annotations

import math

import pytest

from _common import print_table, run_join
from repro.data.generators import line_trap_instance, random_instance
from repro.data.hard_instances import embed_line3
from repro.query import catalog
from repro.theory.bounds import theorem7_bound
from repro.theory.lower_bounds import acyclic_lower_bound

P = 8


def _upper_sweep():
    rows = []
    for k, out_target in ((4, 16000), (4, 64000), (5, 24000)):
        inst = line_trap_instance(k, 4000, out_target, doubled=True)
        out = inst.output_size()
        m = run_join(inst.query, inst, P, "acyclic")
        y = run_join(inst.query, inst, P, "yannakakis")
        t7 = theorem7_bound(inst.input_size, out, P)
        rows.append(
            [f"line{k} trap", m["in"], out, m["load"], t7,
             m["load"] / t7, y["load"]]
        )
    inst = random_instance(catalog.fork_join(), 700, 18, seed=23)
    out = inst.output_size()
    m = run_join(inst.query, inst, P, "acyclic")
    y = run_join(inst.query, inst, P, "yannakakis")
    t7 = theorem7_bound(inst.input_size, out, P)
    rows.append(
        ["fork random", m["in"], out, m["load"], t7, m["load"] / t7, y["load"]]
    )
    return rows


def _theorem8():
    rows = []
    for name in ("fork", "two_ears", "broom"):
        q = catalog.CATALOG[name]
        inst = embed_line3(q, 2400, 24000, seed=29)
        out = inst.output_size()
        lb = acyclic_lower_bound(inst.input_size, out, P)
        m = run_join(q, inst, P, "acyclic")
        rows.append([name, m["in"], out, lb, m["load"], m["load"] / max(1.0, lb)])
    return rows


@pytest.mark.benchmark(group="thm7")
def test_thm7_upper_bound_sweep(benchmark):
    rows = benchmark.pedantic(_upper_sweep, rounds=1, iterations=1)
    print_table(
        f"Theorem 7: acyclic joins, load vs IN/p + sqrt(IN*OUT)/p (p={P})",
        ["workload", "IN", "OUT", "acyclic load", "Thm7 bound", "ratio",
         "yannakakis load"],
        rows,
    )
    for row in rows:
        assert row[5] < 40, row
    # On the big-OUT chain the output-optimal algorithm beats Yannakakis.
    big = max(rows, key=lambda r: r[2])
    assert big[3] < big[6]


@pytest.mark.benchmark(group="thm7")
def test_thm8_embedded_lower_bound(benchmark):
    rows = benchmark.pedantic(_theorem8, rounds=1, iterations=1)
    print_table(
        f"Theorem 8: embedded line-3 hard instances (p={P})",
        ["query", "IN", "OUT", "Thm8 LB", "acyclic load", "load/LB"],
        rows,
    )
    polylog = math.log2(2400) ** 2
    for _q, _in, _out, lb, load, ratio in rows:
        assert load >= 0.8 * lb  # consistency with the lower bound
        assert ratio <= 3 * polylog  # and within polylog: output-optimal
