"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures: it sweeps
workloads, runs the simulated algorithms, and prints the series the paper's
claim is about (measured load vs bound, who wins, where crossovers fall).
Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.core.runner import mpc_join
from repro.data.instance import Instance
from repro.obs import percentiles
from repro.query.hypergraph import Hypergraph

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "REQUIRED_BENCH_KEYS",
    "finish_payload",
    "latency_summary",
    "run_join",
    "print_table",
    "fmt",
]

#: Version of the shared ``BENCH_*.json`` payload schema.  Bump when the
#: required keys change; ``benchmarks/export_results.py --bench-only``
#: fails on any stamped file whose version or keys drift.
BENCH_SCHEMA_VERSION = 2

#: Keys every stamped benchmark payload must carry.
REQUIRED_BENCH_KEYS = ("schema_version", "note")


def latency_summary(samples: Iterable[float]) -> dict[str, float]:
    """p50/p95/p99 (+ mean/count) of wall-clock samples.

    One shared implementation (:func:`repro.obs.percentiles`) so every
    percentile a benchmark reports is computed the same way the engine's
    :meth:`EngineStats.latency_percentiles` computes serving latency.
    """
    values = list(samples)
    out: dict[str, float] = percentiles(values)
    out["mean"] = sum(values) / len(values) if values else 0.0
    out["count"] = len(values)
    return out


def finish_payload(data: dict[str, Any]) -> dict[str, Any]:
    """Stamp the shared benchmark schema onto a payload before writing.

    Adds ``schema_version`` and verifies the required keys are present,
    so drift is caught at write time (and again at aggregation time by
    ``export_results.py``).
    """
    data["schema_version"] = BENCH_SCHEMA_VERSION
    missing = [k for k in REQUIRED_BENCH_KEYS if k not in data]
    if missing:
        raise ValueError(f"bench payload missing required keys: {missing}")
    return data


def run_join(
    query: Hypergraph,
    instance: Instance,
    p: int,
    algorithm: str,
    **kwargs: Any,
) -> dict[str, Any]:
    """Execute one simulated join and collect the numbers benches report."""
    result = mpc_join(query, instance, p=p, algorithm=algorithm, **kwargs)
    return {
        "algorithm": result.meta["algorithm"],
        "backend": result.meta["backend"],
        "p": p,
        "in": instance.input_size,
        "out": result.output_size,
        "load": result.report.load,
        "step_max": result.report.max_step_load,
        "steps": result.report.steps,
    }


def fmt(value: Any) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> None:
    """Render a fixed-width table to stdout (shown with ``pytest -s``)."""
    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in str_rows:
        print("  ".join(c.rjust(w) for c, w in zip(row, widths)))
