"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures: it sweeps
workloads, runs the simulated algorithms, and prints the series the paper's
claim is about (measured load vs bound, who wins, where crossovers fall).
Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.runner import mpc_join
from repro.data.instance import Instance
from repro.query.hypergraph import Hypergraph

__all__ = ["run_join", "print_table", "fmt"]


def run_join(
    query: Hypergraph,
    instance: Instance,
    p: int,
    algorithm: str,
    **kwargs: Any,
) -> dict[str, Any]:
    """Execute one simulated join and collect the numbers benches report."""
    result = mpc_join(query, instance, p=p, algorithm=algorithm, **kwargs)
    return {
        "algorithm": result.meta["algorithm"],
        "backend": result.meta["backend"],
        "p": p,
        "in": instance.input_size,
        "out": result.output_size,
        "load": result.report.load,
        "step_max": result.report.max_step_load,
        "steps": result.report.steps,
    }


def fmt(value: Any) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> None:
    """Render a fixed-width table to stdout (shown with ``pytest -s``)."""
    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in str_rows:
        print("  ".join(c.rjust(w) for c, w in zip(row, widths)))
