"""Columnar wire benchmark: encoded column buffers vs pickled tuple lists.

Measures what the columnar data plane changes at the multiprocess wire on
the PR 2 serving workloads (the ``bench_backends`` mix):

* **wire bytes** — every part shipped to a worker is counted twice: the
  columnar blob actually sent (``bytes_shipped``) and what
  ``pickle.dumps`` of the same row list would have cost
  (``baseline_bytes``, tracked via ``REPRO_WIRE_BASELINE=1``).  The gate
  requires encoded < baseline; the headline number is the ratio.
* **cold/warm request timings** on both backends, exactly as
  ``bench_backends`` defines them (cold = first request including worker
  start, warm = best of the following fresh requests).
* **warm engine replay** — a prepared-plan replay loop through
  :class:`repro.engine.Engine` (result cache off: warm executions replay
  the traced physical plan against the backend) guarding against
  warm-path regressions from the columnar refactor.

Parity is a hard gate: outputs and the full ledger must be bit-identical
between serial and multiprocess on every workload, or nothing is written
and the process exits non-zero.  CI runs ``--quick --check``.

Run:  python benchmarks/bench_columnar.py [--quick] [--check] [output.json]
Writes ``BENCH_columnar.json`` (repo root by default).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from _common import finish_payload

os.environ.setdefault("REPRO_WIRE_BASELINE", "1")

from repro.core.runner import mpc_join  # noqa: E402
from repro.data.generators import line_trap_instance  # noqa: E402
from repro.data.relation import Relation  # noqa: E402
from repro.engine import Engine  # noqa: E402
from repro.mpc import Cluster, distribute_relation  # noqa: E402
from repro.mpc.backends import MultiprocessBackend, SerialBackend  # noqa: E402
from repro.mpc.primitives import (  # noqa: E402
    attach_degrees,
    count_by_key,
    number_rows,
)

P = 8


def _mixed_rows(n: int) -> list[tuple]:
    """Rows with a heterogeneous key column (the expensive encoding path)."""
    rows = []
    for i in range(n):
        k = i % 997
        key = f"user{k}" if k % 3 else k
        rows.append((key, i % 31, f"payload{i % 101}"))
    return rows


def _primitive_serving(n: int):
    rel_ram = Relation("R", ("A", "B", "C"), _mixed_rows(n))

    def request(backend):
        cluster = Cluster(P, backend=backend)
        group = cluster.root_group()
        rel = distribute_relation(rel_ram, group)
        out = [
            count_by_key(group, rel, ("A",), "cnt"),
            attach_degrees(group, rel, ("A",), "deg"),
            number_rows(group, rel, ("B",), "num"),
        ]
        return out, cluster.snapshot()

    return request


def _join_serving(in_size: int, out_size: int):
    inst = line_trap_instance(3, in_size, out_size, doubled=True)

    def request(backend):
        res = mpc_join(inst.query, inst, p=P, algorithm="line3", backend=backend)
        return (res.relation.attrs, res.relation.parts), res.report

    return request


def _time_backend(request, backend, reps: int):
    t0 = time.perf_counter()
    out, report = request(backend)
    cold = time.perf_counter() - t0
    warm = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        out, report = request(backend)
        warm = min(warm, time.perf_counter() - t0)
    return cold, warm, out, report


def _engine_replay(quick: bool) -> dict:
    """Warm prepared-plan replay timing (result cache off: op replay)."""
    n = 400 if quick else 3000
    rows1 = [(i, (i * 7) % n) for i in range(n)]
    rows2 = [(i, f"s{i % 97}") for i in range(n)]
    engine = Engine(p=P, backend="serial", result_cache=False)
    engine.register(Relation("R1", ("A", "B"), rows1))
    engine.register(Relation("R2", ("B", "C"), rows2))
    q = "Q(A,B,C) :- R1(A,B), R2(B,C)"
    t0 = time.perf_counter()
    first = engine.execute(q)
    cold = time.perf_counter() - t0
    reps = 3 if quick else 5
    warm = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        res = engine.execute(q)
        warm = min(warm, time.perf_counter() - t0)
    assert res.rows() == first.rows()
    return {
        "query": q,
        "n": n,
        "cold_seconds": round(cold, 4),
        "warm_replay_seconds": round(warm, 4),
        "replay_speedup_vs_cold": round(cold / warm, 3) if warm else None,
    }


def bench(quick: bool = False) -> dict:
    if quick:
        workloads = {
            "primitive_serving_p8": (_primitive_serving(8000), 2),
            "join_serving_p8": (_join_serving(1500, 9000), 2),
        }
    else:
        workloads = {
            "primitive_serving_p8": (_primitive_serving(60000), 3),
            "join_serving_p8": (_join_serving(6000, 90000), 3),
        }

    results = []
    serial = SerialBackend()
    for name, (request, reps) in workloads.items():
        cold_s, warm_s, out_s, rep_s = _time_backend(request, serial, reps)
        mp = MultiprocessBackend()
        try:
            cold_m, warm_m, out_m, rep_m = _time_backend(request, mp, reps)
            wire = mp.wire_stats()
        finally:
            mp.close()
        outputs_equal = out_s == out_m
        ledger_equal = rep_s.as_dict() == rep_m.as_dict()
        if not (outputs_equal and ledger_equal):
            raise AssertionError(
                f"backend divergence on {name!r}: outputs_equal="
                f"{outputs_equal} ledger_equal={ledger_equal}"
            )
        encoded = wire["bytes_shipped"]
        baseline = wire["baseline_bytes"]
        ratio = (baseline / encoded) if encoded else None
        results.append(
            {
                "workload": name,
                "p": P,
                "parts_shipped": wire["parts_shipped"],
                "encoded_wire_bytes": encoded,
                "pickled_tuple_bytes": baseline,
                "wire_reduction": round(ratio, 3) if ratio else None,
                "serial_cold_seconds": round(cold_s, 4),
                "serial_warm_seconds": round(warm_s, 4),
                "multiprocess_cold_seconds": round(cold_m, 4),
                "multiprocess_warm_seconds": round(warm_m, 4),
                "warm_speedup": round(warm_s / warm_m, 3),
                "outputs_equal": outputs_equal,
                "ledger_equal": ledger_equal,
            }
        )
        print(
            f"{name:22s} wire {encoded:>9d}B vs pickle {baseline:>9d}B "
            f"({ratio:5.2f}x smaller)  warm serial {warm_s:6.3f}s vs "
            f"multiprocess {warm_m:6.3f}s  parity ok"
        )
    replay = _engine_replay(quick)
    print(
        f"engine warm replay     {replay['warm_replay_seconds']:.4f}s "
        f"(cold {replay['cold_seconds']:.4f}s)"
    )
    return {
        "p": P,
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "note": (
            "encoded_wire_bytes = columnar part blobs actually shipped to "
            "workers (minimal-width arrays + dictionaries + zlib); "
            "pickled_tuple_bytes = pickle.dumps of the same row lists (the "
            "pre-columnar wire format).  The ledger counts logical tuples "
            "and is identical under both formats by the parity gate."
        ),
        "workloads": results,
        "engine_replay": replay,
    }


def main(argv: list[str]) -> None:
    quick = "--quick" in argv
    check = "--check" in argv
    paths = [a for a in argv if not a.startswith("-")]
    out_path = (
        Path(paths[0]) if paths
        else Path(__file__).parent.parent / "BENCH_columnar.json"
    )
    data = finish_payload(bench(quick=quick))
    out_path.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {out_path}")
    if check:
        bad = [
            w for w in data["workloads"]
            if w["encoded_wire_bytes"] >= w["pickled_tuple_bytes"]
        ]
        if bad:
            print(
                "FAIL: encoded wire not below the row-pickle baseline on "
                + ", ".join(w["workload"] for w in bad)
            )
            raise SystemExit(1)
        print("check ok: parity gates passed, encoded wire < pickle baseline")


if __name__ == "__main__":
    main(sys.argv[1:])
