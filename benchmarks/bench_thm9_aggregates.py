"""EXP-T9/T10/C4 — Section 6: join-aggregate queries.

* Corollary 4: computing |Q(R)| has linear load — flat in OUT.
* Theorem 9: free-connex join-aggregates run in
  O(IN/p + sqrt(IN*OUT')/p) where OUT' is the *aggregated* output size
  (much smaller than |Q(R)|).
* Theorem 10: out-hierarchical queries dispatch to the instance-optimal
  join on the residual query.
"""

from __future__ import annotations

import pytest

from _common import print_table
from repro.core.runner import mpc_join_aggregate, mpc_output_size
from repro.data.generators import line_trap_instance
from repro.semiring import COUNT

P = 8


def _corollary4():
    rows = []
    for out_target in (12000, 96000, 360000):
        inst = line_trap_instance(3, 3000, out_target)
        cnt, rep = mpc_output_size(inst.query, inst, P)
        rows.append([inst.input_size, cnt, rep.load, rep.load / (inst.input_size / P)])
    return rows


def _theorem9():
    rows = []
    for out_target in (12000, 96000, 360000):
        inst = line_trap_instance(3, 3000, out_target)
        ann = inst.with_uniform_annotations(COUNT)
        q = inst.query
        for outputs in ({"X0"}, {"X0", "X1"}):
            res = mpc_join_aggregate(q, outputs, ann, COUNT, p=P)
            rows.append(
                [
                    out_target,
                    "{" + ",".join(sorted(outputs)) + "}",
                    res.meta["downstream"],
                    len(res.relation),
                    res.report.load,
                ]
            )
    return rows


@pytest.mark.benchmark(group="thm9")
def test_corollary4_linear_count(benchmark):
    rows = benchmark.pedantic(_corollary4, rounds=1, iterations=1)
    print_table(
        f"Corollary 4: |Q(R)| with linear load (p={P})",
        ["IN", "OUT", "count load", "load/(IN/p)"],
        rows,
    )
    loads = [r[2] for r in rows]
    # Flat in OUT (30x OUT growth, ~no load growth).
    assert max(loads) <= 1.4 * min(loads)
    assert all(r[3] < 20 for r in rows)


@pytest.mark.benchmark(group="thm9")
def test_thm9_thm10_aggregate_sweep(benchmark):
    rows = benchmark.pedantic(_theorem9, rounds=1, iterations=1)
    print_table(
        f"Theorems 9-10: COUNT GROUP BY on the line-3 trap (p={P})",
        ["|Q(R)| target", "outputs", "downstream", "OUT'", "load"],
        rows,
    )
    # Theorem 10: grouping attributes covered by one edge dispatch to the
    # instance-optimal (out-hierarchical) path.
    assert all(r[2] == "rhierarchical" for r in rows)
    # Aggregation shields the load from |Q(R)|: the aggregate load is flat
    # while the full join output grows 30x.
    by_outputs: dict[str, list[int]] = {}
    for _t, outputs, _d, _o, load in rows:
        by_outputs.setdefault(outputs, []).append(load)
    for outputs, loads in by_outputs.items():
        assert max(loads) <= 1.6 * min(loads), outputs
