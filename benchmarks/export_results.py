"""Export the experiment series as JSON (figure-data artifact).

Not a pytest benchmark: a straight script that re-runs the headline sweeps
and writes machine-readable series to ``results/`` so the tables in
EXPERIMENTS.md can be regenerated or re-plotted without scraping stdout.

Also the schema gate for the ``BENCH_*.json`` artifacts: ``--bench-only``
scans the repo root, validates every stamped payload against the shared
schema in ``benchmarks/_common.py`` (exit 1 on drift), and aggregates
any latency percentiles into ``results/bench_latency.json``.

Run:  python benchmarks/export_results.py [output_dir]
      python benchmarks/export_results.py --bench-only [output_dir]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from _common import BENCH_SCHEMA_VERSION, REQUIRED_BENCH_KEYS

from repro.core.runner import mpc_join, mpc_output_size
from repro.data.generators import forest_instance, line_trap_instance
from repro.data.hard_instances import line3_random_hard
from repro.query import catalog
from repro.query.classify import classify
from repro.theory.bounds import l_instance, theorem5_bound, yannakakis_bound
from repro.theory.lower_bounds import line3_lower_bound

P = 8


def thm5_sweep() -> list[dict]:
    series = []
    for out_target in (6000, 24000, 96000, 180000):
        inst = line_trap_instance(3, 3000, out_target, doubled=True)
        out = inst.output_size()
        new = mpc_join(inst.query, inst, p=P, algorithm="line3")
        yan = mpc_join(inst.query, inst, p=P, algorithm="yannakakis")
        series.append(
            {
                "out": out,
                "in": inst.input_size,
                "line3_load": new.report.load,
                "yannakakis_load": yan.report.load,
                "thm5_bound": theorem5_bound(inst.input_size, out, P),
                "yannakakis_bound": yannakakis_bound(inst.input_size, out, P),
            }
        )
    return series


def thm6_sweep() -> list[dict]:
    series = []
    for mult in (1, 4, P, 4 * P):
        inst = line3_random_hard(3000, mult * 3000, seed=19)
        out = inst.output_size()
        rows = {"out": out, "in": inst.input_size,
                "thm6_lb": line3_lower_bound(inst.input_size, out, P)}
        for algo in ("line3", "wc-line3"):
            res = mpc_join(inst.query, inst, p=P, algorithm=algo)
            rows[f"{algo}_load"] = res.report.load
        rows["l_instance"] = l_instance(inst.query, inst, P)
        series.append(rows)
    return series


def thm3_sweep() -> list[dict]:
    series = []
    q = catalog.q2_hierarchical()
    for skew in (1.0, 3.0, 9.0):
        inst = forest_instance(q, 4, skew=skew)
        bound = inst.input_size / P + l_instance(q, inst, P)
        res = mpc_join(q, inst, p=P, algorithm="rhierarchical")
        series.append(
            {
                "skew": skew,
                "in": inst.input_size,
                "out": inst.output_size(),
                "bound": bound,
                "load": res.report.load,
                "ratio": res.report.load / bound,
            }
        )
    return series


def corollary4_sweep() -> list[dict]:
    series = []
    for out_target in (12000, 96000, 360000):
        inst = line_trap_instance(3, 3000, out_target)
        cnt, rep = mpc_output_size(inst.query, inst, P)
        series.append({"in": inst.input_size, "out": cnt, "load": rep.load})
    return series


def substrate_speedup() -> list[dict]:
    """Before/after wall-clock comparison of the mpc substrate caches.

    "Before" is the *same* (fused) primitive code with every substrate
    cache bypassed — it isolates the caching layer's gain, not the full
    distance to the pre-substrate primitives (the fusion itself is not
    un-doable at runtime).  Ledger numbers and outputs are verified
    identical between the two paths by the benchmark itself.
    """
    from bench_substrate import bench

    rows = bench(quick=True)["workloads"]
    header = f"{'workload':24s} {'before (s)':>11s} {'after (s)':>10s} {'speedup':>8s}"
    print("\n=== substrate: before/after wall-clock ===")
    print(header)
    print("-" * len(header))
    for w in rows:
        print(
            f"{w['workload']:24s} {w['bypassed_seconds']:11.3f} "
            f"{w['cached_seconds']:10.3f} {w['speedup']:7.2f}x"
        )
    return rows


def classification_census() -> list[dict]:
    return [
        {
            "query": name,
            "class": classify(q).name,
            "edges": len(q.edge_names),
            "attributes": len(q.attributes),
        }
        for name, q in sorted(catalog.CATALOG.items())
    ]


EXPORTS = {
    "fig1_census": classification_census,
    "thm3_ratio_sweep": thm3_sweep,
    "thm5_out_sweep": thm5_sweep,
    "thm6_crossover": thm6_sweep,
    "cor4_linear_count": corollary4_sweep,
    "substrate_speedup": substrate_speedup,
}


def _collect_latency_fields(node, path=""):
    """Recursively pull every latency/percentile dict out of a payload."""
    found = []
    if isinstance(node, dict):
        if {"p50", "p95", "p99"} <= set(node):
            found.append((path, node))
        else:
            for key, value in node.items():
                found.extend(
                    _collect_latency_fields(value, f"{path}.{key}" if path else key)
                )
    elif isinstance(node, list):
        for i, value in enumerate(node):
            found.extend(_collect_latency_fields(value, f"{path}[{i}]"))
    return found


def check_bench_artifacts(out_dir: str = "results") -> int:
    """Validate stamped BENCH_*.json files and aggregate their percentiles.

    Stamped payloads (any with a ``schema_version`` key) must match
    :data:`_common.BENCH_SCHEMA_VERSION` exactly and carry every key in
    :data:`_common.REQUIRED_BENCH_KEYS` — drift fails the run (exit 1).
    Unstamped files are legacy artifacts: warn and skip.
    """
    root = Path(__file__).parent.parent
    bench_files = sorted(root.glob("BENCH_*.json"))
    if not bench_files:
        print("no BENCH_*.json artifacts found — nothing to validate")
        return 0
    failures = []
    latency: dict[str, dict] = {}
    for bf in bench_files:
        try:
            data = json.loads(bf.read_text())
        except (OSError, ValueError) as exc:
            failures.append(f"{bf.name}: unreadable ({exc})")
            continue
        if "schema_version" not in data:
            print(f"warn: {bf.name} is unstamped (legacy artifact) — skipped")
            continue
        if data["schema_version"] != BENCH_SCHEMA_VERSION:
            failures.append(
                f"{bf.name}: schema_version {data['schema_version']} != "
                f"{BENCH_SCHEMA_VERSION}"
            )
            continue
        missing = [k for k in REQUIRED_BENCH_KEYS if k not in data]
        if missing:
            failures.append(f"{bf.name}: missing required keys {missing}")
            continue
        fields = _collect_latency_fields(data)
        if fields:
            latency[bf.name] = {path: stats for path, stats in fields}
        print(f"ok: {bf.name} (schema v{data['schema_version']}, "
              f"{len(fields)} latency series)")
    if latency:
        path = root / out_dir
        path.mkdir(exist_ok=True)
        target = path / "bench_latency.json"
        target.write_text(
            json.dumps({"schema_version": BENCH_SCHEMA_VERSION,
                        "artifacts": latency}, indent=2) + "\n"
        )
        print(f"wrote {target} ({sum(len(v) for v in latency.values())} series)")
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    return 0


def main(out_dir: str = "results") -> None:
    path = Path(out_dir)
    path.mkdir(exist_ok=True)
    for name, fn in EXPORTS.items():
        data = fn()
        target = path / f"{name}.json"
        target.write_text(json.dumps({"p": P, "series": data}, indent=2))
        print(f"wrote {target} ({len(data)} rows)")
    raise SystemExit(check_bench_artifacts(out_dir))


if __name__ == "__main__":
    argv = [a for a in sys.argv[1:] if a != "--bench-only"]
    target_dir = argv[0] if argv else "results"
    if "--bench-only" in sys.argv[1:]:
        raise SystemExit(check_bench_artifacts(target_dir))
    main(target_dir)
