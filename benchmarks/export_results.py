"""Export the experiment series as JSON (figure-data artifact).

Not a pytest benchmark: a straight script that re-runs the headline sweeps
and writes machine-readable series to ``results/`` so the tables in
EXPERIMENTS.md can be regenerated or re-plotted without scraping stdout.

Run:  python benchmarks/export_results.py [output_dir]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.core.runner import mpc_join, mpc_output_size
from repro.data.generators import forest_instance, line_trap_instance
from repro.data.hard_instances import line3_random_hard
from repro.query import catalog
from repro.query.classify import classify
from repro.theory.bounds import l_instance, theorem5_bound, yannakakis_bound
from repro.theory.lower_bounds import line3_lower_bound

P = 8


def thm5_sweep() -> list[dict]:
    series = []
    for out_target in (6000, 24000, 96000, 180000):
        inst = line_trap_instance(3, 3000, out_target, doubled=True)
        out = inst.output_size()
        new = mpc_join(inst.query, inst, p=P, algorithm="line3")
        yan = mpc_join(inst.query, inst, p=P, algorithm="yannakakis")
        series.append(
            {
                "out": out,
                "in": inst.input_size,
                "line3_load": new.report.load,
                "yannakakis_load": yan.report.load,
                "thm5_bound": theorem5_bound(inst.input_size, out, P),
                "yannakakis_bound": yannakakis_bound(inst.input_size, out, P),
            }
        )
    return series


def thm6_sweep() -> list[dict]:
    series = []
    for mult in (1, 4, P, 4 * P):
        inst = line3_random_hard(3000, mult * 3000, seed=19)
        out = inst.output_size()
        rows = {"out": out, "in": inst.input_size,
                "thm6_lb": line3_lower_bound(inst.input_size, out, P)}
        for algo in ("line3", "wc-line3"):
            res = mpc_join(inst.query, inst, p=P, algorithm=algo)
            rows[f"{algo}_load"] = res.report.load
        rows["l_instance"] = l_instance(inst.query, inst, P)
        series.append(rows)
    return series


def thm3_sweep() -> list[dict]:
    series = []
    q = catalog.q2_hierarchical()
    for skew in (1.0, 3.0, 9.0):
        inst = forest_instance(q, 4, skew=skew)
        bound = inst.input_size / P + l_instance(q, inst, P)
        res = mpc_join(q, inst, p=P, algorithm="rhierarchical")
        series.append(
            {
                "skew": skew,
                "in": inst.input_size,
                "out": inst.output_size(),
                "bound": bound,
                "load": res.report.load,
                "ratio": res.report.load / bound,
            }
        )
    return series


def corollary4_sweep() -> list[dict]:
    series = []
    for out_target in (12000, 96000, 360000):
        inst = line_trap_instance(3, 3000, out_target)
        cnt, rep = mpc_output_size(inst.query, inst, P)
        series.append({"in": inst.input_size, "out": cnt, "load": rep.load})
    return series


def substrate_speedup() -> list[dict]:
    """Before/after wall-clock comparison of the mpc substrate caches.

    "Before" is the *same* (fused) primitive code with every substrate
    cache bypassed — it isolates the caching layer's gain, not the full
    distance to the pre-substrate primitives (the fusion itself is not
    un-doable at runtime).  Ledger numbers and outputs are verified
    identical between the two paths by the benchmark itself.
    """
    from bench_substrate import bench

    rows = bench(quick=True)["workloads"]
    header = f"{'workload':24s} {'before (s)':>11s} {'after (s)':>10s} {'speedup':>8s}"
    print("\n=== substrate: before/after wall-clock ===")
    print(header)
    print("-" * len(header))
    for w in rows:
        print(
            f"{w['workload']:24s} {w['bypassed_seconds']:11.3f} "
            f"{w['cached_seconds']:10.3f} {w['speedup']:7.2f}x"
        )
    return rows


def classification_census() -> list[dict]:
    return [
        {
            "query": name,
            "class": classify(q).name,
            "edges": len(q.edge_names),
            "attributes": len(q.attributes),
        }
        for name, q in sorted(catalog.CATALOG.items())
    ]


EXPORTS = {
    "fig1_census": classification_census,
    "thm3_ratio_sweep": thm3_sweep,
    "thm5_out_sweep": thm5_sweep,
    "thm6_crossover": thm6_sweep,
    "cor4_linear_count": corollary4_sweep,
    "substrate_speedup": substrate_speedup,
}


def main(out_dir: str = "results") -> None:
    path = Path(out_dir)
    path.mkdir(exist_ok=True)
    for name, fn in EXPORTS.items():
        data = fn()
        target = path / f"{name}.json"
        target.write_text(json.dumps({"p": P, "series": data}, indent=2))
        print(f"wrote {target} ({len(data)} rows)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "results")
