"""Shared-memory transport benchmark: zero-copy descriptors + pipelining.

A mixed serving workload runs warm (result cache off, plan replay on)
through four configurations of the same engine stack:

* **mp-seq** — the PR-5 baseline: a private supervised
  :class:`MultiprocessBackend`, synchronous rounds (``pipeline=False``),
  one submitter thread;
* **mp-pipe** — the same pool with the pipelined executor and concurrent
  submitters (isolates what pipelining buys without the arena);
* **shm-pipe** — the :class:`SharedMemoryBackend`: parts interned once
  into the shared-memory arena, workers decode zero-copy, pipelined,
  concurrent submitters;
* **chaos-shm** — shm wrapped in the fault injector (parity only: faults
  may cost wall-clock, never bytes or bits).

Gates, in order — nothing is written unless all pass:

1. **Parity**: outputs and the full LoadReport of every query, cold and
   warm, on every configuration, bit-identical to the serial reference.
2. **Leaks**: after ``close()`` every arena segment is unlinked — zero
   ``/dev/shm/repro-<pid>-*`` entries survive.
3. (``--check``, only when ``cpu_count > 1``) **Throughput**: warm
   ``submit_batch`` on shm-pipe sustains >= 1.5x the queries/sec of the
   mp-seq baseline.  On single-CPU hosts the ratio is recorded but not
   gated — there is no parallelism for the pipeline to exploit.

The wire story is reported either way: shm re-ships zero part bytes on
warm passes (descriptor_ships grows, bytes_shipped does not), which is
the transport's actual claim; the throughput gate is about the executor
overlapping coordinator bookkeeping with backend rounds.

Run:  python benchmarks/bench_shm.py [--quick] [--check] [output.json]
Writes ``BENCH_shm.json`` (repo root by default).
"""

from __future__ import annotations

import glob
import json
import os
import sys
import time
from pathlib import Path

from _common import finish_payload

from repro.data.generators import line_trap_instance, random_instance
from repro.engine import Engine
from repro.mpc.backends import FaultInjectingBackend, MultiprocessBackend
from repro.mpc.backends.shm import SharedMemoryBackend, shm_supported
from repro.query import catalog

P = 8
WORKERS = 4
THREADS = 4

WORKLOAD = (
    "Q(A,B,C,D) :- R1(A,B), R2(B,C), R3(C,D)",
    "Q(A,B,C) :- S1(A,B), S2(B,C)",
    "Q(A,B,C,D,E) :- F1(A,B), F2(B,C), F3(C,D), F4(C,E)",
    "Q(B; count) :- R1(A,B), R2(B,C), R3(C,D)",
)


def _base_relations(quick: bool) -> dict:
    n = 1000 if quick else 5000
    trap = line_trap_instance(3, n, 2 * n, doubled=True)
    binary = random_instance(catalog.binary_join(), n, max(8, n // 40), seed=7)
    fork = random_instance(catalog.fork_join(), n, max(8, n // 8), seed=17)
    rels = dict(trap.relations)
    rels.update({f"S{i}": r for i, (_n, r) in enumerate(binary.relations.items(), 1)})
    rels.update({f"F{i}": r for i, (_n, r) in enumerate(fork.relations.items(), 1)})
    return rels


def _payload(res):
    if res.metrics.kind == "join":
        return {"attrs": res.relation.attrs, "parts": res.relation.parts}
    return {
        "scalar": res.scalar,
        "rows": None if res.relation is None else list(res.relation.rows),
        "annotations": (
            None if res.relation is None
            else list(res.relation.annotations or ())
        ),
    }


def _engine(relations: dict, backend, pipeline: bool) -> Engine:
    engine = Engine(
        p=P, backend=backend, result_cache=False, pipeline=pipeline
    )
    for name, rel in relations.items():
        engine.register(rel, name=name)
    return engine


def _leaked_segments() -> list[str]:
    return glob.glob(f"/dev/shm/repro-{os.getpid()}-*")


def _verify_parity(name: str, engine: Engine, ref: list) -> None:
    """Cold + one warm pass, every query bit-identical to the reference."""
    for label, expect_replay in (("cold", False), ("warm", True)):
        for text, (ref_payload, ref_ledger) in zip(WORKLOAD, ref):
            res = engine.execute(text)
            if _payload(res) != ref_payload:
                raise AssertionError(f"{name} {label} outputs diverge on {text!r}")
            if res.report.as_dict() != ref_ledger:
                raise AssertionError(f"{name} {label} ledger diverges on {text!r}")
            if expect_replay and not res.metrics.plan_replayed:
                raise AssertionError(f"{name} warm pass did not replay {text!r}")


def _throughput(engine: Engine, batch: list, threads: int, reps: int):
    """Best warm submit_batch wall time over ``reps`` passes."""
    engine.submit_batch(batch, threads=threads)  # warm-up (traces exist)
    best = float("inf")
    report = None
    for _ in range(reps):
        t0 = time.perf_counter()
        report = engine.submit_batch(batch, threads=threads)
        best = min(best, time.perf_counter() - t0)
    assert report is not None
    if not all(r.ok and r.metrics.plan_replayed for r in report.results):
        raise AssertionError("warm batch pass failed to replay cleanly")
    return best


def bench(quick: bool = False) -> dict:
    relations = _base_relations(quick)
    reps = 3 if quick else 5
    batch = list(WORKLOAD) * (4 if quick else 8)

    serial = _engine(relations, "serial", pipeline=False)
    ref = []
    for text in WORKLOAD:
        res = serial.execute(text)
        ref.append((_payload(res), res.report.as_dict()))

    mp_seq_b = MultiprocessBackend(workers=WORKERS)
    mp_pipe_b = MultiprocessBackend(workers=WORKERS)
    shm_b = SharedMemoryBackend(workers=WORKERS)
    chaos_b = FaultInjectingBackend(
        inner=SharedMemoryBackend(
            workers=WORKERS, round_timeout=1.0, retry_budget=3,
            backoff_base=0.01,
        ),
        seed=3, rate=0.25,
    )
    modes = {
        "mp-seq": (_engine(relations, mp_seq_b, pipeline=False), 1),
        "mp-pipe": (_engine(relations, mp_pipe_b, pipeline=True), THREADS),
        "shm-pipe": (_engine(relations, shm_b, pipeline=True), THREADS),
        "chaos-shm": (_engine(relations, chaos_b, pipeline=True), 1),
    }
    rows = {}
    try:
        # ---- gate 1: conformance parity on every configuration
        for name, (engine, _threads) in modes.items():
            _verify_parity(name, engine, ref)
        print(f"parity ok: {len(modes)} configurations x {len(WORKLOAD)} "
              "queries, cold + warm, outputs and ledgers bit-identical")

        # ---- timing (chaos excluded: faults cost wall-clock by design)
        for name, (engine, threads) in modes.items():
            if name == "chaos-shm":
                continue
            backend = engine._cluster.backend
            wire_before = backend.wire_stats().get("bytes_shipped", 0)
            seconds = _throughput(engine, batch, threads, reps)
            wire = backend.wire_stats()
            rows[name] = {
                "threads": threads,
                "pipeline": engine.pipeline,
                "batch_queries": len(batch),
                "best_seconds": round(seconds, 4),
                "queries_per_second": round(len(batch) / seconds, 1),
                "warm_bytes_shipped": (
                    wire.get("bytes_shipped", 0) - wire_before
                ),
            }
            if "shm" in name:
                rows[name].update({
                    "shm_segments": wire["shm_segments"],
                    "shm_entries": wire["shm_entries"],
                    "shm_bytes_interned": wire["shm_bytes_interned"],
                    "descriptor_ships": wire["descriptor_ships"],
                })
            print(f"{name:9s} {rows[name]['queries_per_second']:8.1f} q/s "
                  f"({threads} threads, warm bytes shipped: "
                  f"{rows[name]['warm_bytes_shipped']})")

        # The transport claim: warm shm passes ship zero part bytes.
        if rows["shm-pipe"]["warm_bytes_shipped"] != 0:
            raise AssertionError(
                "shm warm passes re-shipped part bytes; the arena is not "
                "content-addressing the workload"
            )
        chaos_faults = chaos_b.fault_stats()
    finally:
        for b in (mp_seq_b, mp_pipe_b, shm_b, chaos_b):
            b.close()

    # ---- gate 2: zero leaked segments after close
    leaked = _leaked_segments()
    if leaked:
        raise AssertionError(f"leaked shm segments after close: {leaked}")
    print("leak check ok: no /dev/shm segments survive close()")

    speedup = round(
        rows["mp-seq"]["best_seconds"] / rows["shm-pipe"]["best_seconds"], 3
    )
    return {
        "p": P,
        "workers": WORKERS,
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "workload": list(WORKLOAD),
        "batch_queries": len(batch),
        "modes": rows,
        "shm_speedup_vs_mp_seq": speedup,
        "speedup_gated": (os.cpu_count() or 1) > 1,
        "chaos_parity": {
            "verified": True,
            "faults_absorbed": {
                k: v for k, v in chaos_faults.items() if v
            },
        },
        "leaked_segments": 0,
        "note": (
            "Warm submit_batch throughput, result cache off: every query "
            "replays its traced plan through the backend. Parity (outputs "
            "+ full LoadReports, cold and warm, all four configurations "
            "vs the serial reference) and segment-leak checks gate the "
            "timing. shm warm passes ship only (fingerprint, offset, "
            "length) descriptors - warm_bytes_shipped must be 0. The "
            "1.5x throughput gate applies only at cpu_count > 1; "
            "single-CPU hosts record the ratio ungated."
        ),
    }


def main(argv: list[str]) -> int:
    if not shm_supported():
        print("shared memory unsupported on this platform; skipping cleanly")
        return 0
    quick = "--quick" in argv
    check = "--check" in argv
    paths = [a for a in argv if not a.startswith("-")]
    out_path = (
        Path(paths[0]) if paths
        else Path(__file__).parent.parent / "BENCH_shm.json"
    )
    data = finish_payload(bench(quick=quick))
    out_path.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {out_path}")
    if check and data["speedup_gated"]:
        if data["shm_speedup_vs_mp_seq"] < 1.5:
            print(
                f"FAIL: shm-pipe speedup {data['shm_speedup_vs_mp_seq']}x "
                "< 1.5x over mp-seq", file=sys.stderr,
            )
            return 1
        print(f"check ok: {data['shm_speedup_vs_mp_seq']}x >= 1.5x")
    elif check:
        print(
            f"check skipped: cpu_count={data['cpu_count']} (ratio "
            f"{data['shm_speedup_vs_mp_seq']}x recorded, not gated)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
