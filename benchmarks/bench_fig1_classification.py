"""EXP-F1/F2 — Figures 1-2: the classification census and attribute forests.

Regenerates Figure 1's strict inclusion chain with catalog witnesses and
Figure 2's attribute forests for the paper's Q1 and Q2.
"""

from __future__ import annotations

import pytest

from _common import print_table
from repro.query import catalog
from repro.query.classify import JoinClass, classify
from repro.query.forests import attribute_forest
from repro.query.paths import minimal_path_of_length_3


def _census():
    rows = []
    for name, q in sorted(catalog.CATALOG.items()):
        cls = classify(q)
        witness = ""
        if cls == JoinClass.ACYCLIC:
            witness = "->".join(minimal_path_of_length_3(q) or ())
        rows.append([name, cls.name, len(q.edge_names), len(q.attributes), witness])
    return rows


@pytest.mark.benchmark(group="fig1")
def test_fig1_classification_census(benchmark):
    rows = benchmark.pedantic(_census, rounds=1, iterations=1)
    print_table(
        "Figure 1: classification census (witness = Lemma 2 minimal 3-path)",
        ["query", "class", "m", "n", "minimal 3-path"],
        rows,
    )
    classes = {r[0]: r[1] for r in rows}
    # Strict inclusion witnesses, as drawn in Figure 1.
    assert classes["q1_tall_flat"] == "TALL_FLAT"
    assert classes["q2_hierarchical"] == "HIERARCHICAL"
    assert classes["q2_r_hierarchical"] == "R_HIERARCHICAL"
    assert classes["line3"] == "ACYCLIC"
    assert classes["triangle"] == "CYCLIC"
    # Lemma 2: every ACYCLIC (non-r-hier) row carries a witness path.
    for name, cls, _m, _n, witness in rows:
        if cls == "ACYCLIC":
            assert witness, name


@pytest.mark.benchmark(group="fig1")
def test_fig2_attribute_forests(benchmark):
    def build():
        out = {}
        for name in ("q1_tall_flat", "q2_hierarchical"):
            forest = attribute_forest(catalog.CATALOG[name])
            out[name] = {x: forest.parent[x] for x in sorted(forest.parent)}
        return out

    forests = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        [name, x, par or "(root)"]
        for name, parent in forests.items()
        for x, par in parent.items()
    ]
    print_table("Figure 2: attribute forests", ["query", "attr", "parent"], rows)
    assert forests["q1_tall_flat"]["x4"] == "x3"
    assert forests["q2_hierarchical"]["x5"] == "x3"
