"""EXP-T1 — Table 1: the paper's results grid, measured.

One representative query per class, each algorithm's measured load against
the bound its Table 1 cell claims.  The shape to reproduce: within each
row, the algorithm with the stronger guarantee carries the smaller (or
equal) load, and each measured load sits within a modest constant (or
polylog, for BinHC) of its bound.
"""

from __future__ import annotations

import pytest

from _common import print_table, run_join
from repro.data.generators import forest_instance, line_trap_instance, star_instance
from repro.query import catalog
from repro.theory.bounds import l_instance, theorem5_bound, yannakakis_bound

P = 8


def _rows():
    rows = []

    # Tall-flat: one-round BinHC is instance-optimal (x polylog).
    inst = forest_instance(catalog.q1_tall_flat(), 3, skew=2.0)
    li = inst.input_size / P + l_instance(inst.query, inst, P)
    for algo in ("binhc", "rhierarchical"):
        m = run_join(inst.query, inst, P, algo)
        rows.append(["tall-flat (Q1)", algo, m["in"], m["out"], m["load"],
                     f"{m['load'] / li:.1f}x L_inst"])

    # r-hierarchical: multi-round instance-optimal, Theta(L_ins-opt).
    inst = star_instance(3, 8, 6)
    li = inst.input_size / P + l_instance(inst.query, inst, P)
    for algo in ("binhc-multiround", "rhierarchical"):
        m = run_join(inst.query, inst, P, algo)
        rows.append(["r-hier (star3)", algo, m["in"], m["out"], m["load"],
                     f"{m['load'] / li:.1f}x L_inst"])

    # Acyclic non-r-hierarchical: output-optimal vs Yannakakis.
    inst = line_trap_instance(3, 2400, 96000, doubled=True)
    out = inst.output_size()
    t5 = theorem5_bound(inst.input_size, out, P)
    yb = yannakakis_bound(inst.input_size, out, P)
    m = run_join(inst.query, inst, P, "line3")
    rows.append(["acyclic (line3)", "line3 (Thm 5)", m["in"], m["out"], m["load"],
                 f"{m['load'] / t5:.1f}x Thm5"])
    m = run_join(inst.query, inst, P, "yannakakis")
    rows.append(["acyclic (line3)", "yannakakis", m["in"], m["out"], m["load"],
                 f"{m['load'] / yb:.1f}x Yan"])
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_grid(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    print_table(
        "Table 1 (measured): class x algorithm",
        ["class", "algorithm", "IN", "OUT", "load", "vs bound"],
        rows,
    )
    by_class: dict[str, dict[str, int]] = {}
    for cls, algo, _in, _out, load, _r in rows:
        by_class.setdefault(cls, {})[algo] = load
    # Output-optimal beats Yannakakis on the large-OUT acyclic instance.
    acyc = by_class["acyclic (line3)"]
    assert acyc["line3 (Thm 5)"] < acyc["yannakakis"]
