"""EXP-F3 — Figure 3 / Section 4.1: join order matters in MPC.

On the directional trap the plan shuffling the OUT-sized intermediate pays
~OUT/p while the other stays near-linear; on the doubled trap *no* order
is good, and the Section 4.2 decomposition beats both.
"""

from __future__ import annotations

import pytest

from _common import print_table
from repro.core.runner import mpc_join
from repro.core.yannakakis import left_deep_plan
from repro.data.generators import line_trap_instance

P = 8
IN_SIZE = 3000
OUT_SIZE = 120000

FWD_PLAN = left_deep_plan(["R1", "R2", "R3"])  # (R1 x R2) x R3
BWD_PLAN = ("R1", ("R2", "R3"))  # R1 x (R2 x R3)


def _measure(instance):
    out = {}
    for name, plan in (("(R1*R2)*R3", FWD_PLAN), ("R1*(R2*R3)", BWD_PLAN)):
        res = mpc_join(instance.query, instance, p=P, algorithm="yannakakis", plan=plan)
        out[name] = res.report.load
    res = mpc_join(instance.query, instance, p=P, algorithm="line3")
    out["line3 (Sec 4.2)"] = res.report.load
    return out


@pytest.mark.benchmark(group="fig3")
def test_fig3_directional_trap(benchmark):
    inst = line_trap_instance(3, IN_SIZE, OUT_SIZE, direction="forward")
    loads = benchmark.pedantic(_measure, args=(inst,), rounds=1, iterations=1)
    print_table(
        f"Figure 3 (top): forward trap, IN={inst.input_size}, OUT={inst.output_size()}",
        ["plan", "load"],
        [[k, v] for k, v in loads.items()],
    )
    # The bad order shuffles the OUT-sized intermediate.
    assert loads["(R1*R2)*R3"] > 2 * loads["R1*(R2*R3)"]


@pytest.mark.benchmark(group="fig3")
def test_fig3_doubled_trap(benchmark):
    inst = line_trap_instance(3, IN_SIZE, OUT_SIZE // 2, doubled=True)
    loads = benchmark.pedantic(_measure, args=(inst,), rounds=1, iterations=1)
    print_table(
        f"Figure 3 (full): doubled trap, IN={inst.input_size}, OUT={inst.output_size()}",
        ["plan", "load"],
        [[k, v] for k, v in loads.items()],
    )
    # No single order wins; the heavy/light decomposition beats both.
    both = [loads["(R1*R2)*R3"], loads["R1*(R2*R3)"]]
    assert loads["line3 (Sec 4.2)"] < min(both)
    assert min(both) > 0.5 * (inst.output_size() / P)
