"""Plan-fusion benchmark: warm op-replay round-trips vs the re-drive baseline.

A mixed serving workload (line-3 join, binary join, acyclic fork join,
GROUP BY COUNT) runs through three warm-path configurations of the same
persistent :class:`repro.engine.Engine` session (result cache off, so
every warm query actually executes against the backend):

* **fused** — warm executions replay the traced physical plan with the
  fusion pass on: worker-local ops batch into single
  ``Backend.run_ops`` round-trips;
* **unfused** — the same replay with one backend request per op
  (``fusion=False``);
* **re-drive** — the pre-plan baseline (``plan_replay=False``): the
  algorithms' Python control flow re-runs and issues one ``map_parts``
  request per primitive step, exactly as before this layer existed.

Parity is a hard gate: outputs and the full LoadReport must be
bit-identical across all three modes (and equal to the cold run) on
every workload query, or nothing is written and the process exits
non-zero.  ``--check`` additionally gates the round-trip reduction: the
fused warm path must issue fewer backend requests than the unfused
replay AND fewer than the re-drive baseline.

Run:  python benchmarks/bench_plan_fusion.py [--quick] [--check]
          [--backend NAME] [output.json]
Writes ``BENCH_plan.json`` (repo root by default).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from _common import finish_payload

from repro.data.generators import line_trap_instance, random_instance
from repro.engine import Engine
from repro.mpc import shutdown_backends
from repro.query import catalog

P = 8


def _base_relations(quick: bool) -> dict:
    n = 1000 if quick else 5000
    trap = line_trap_instance(3, n, 2 * n, doubled=True)
    binary = random_instance(catalog.binary_join(), n, max(8, n // 40), seed=7)
    fork = random_instance(catalog.fork_join(), n, max(8, n // 8), seed=17)
    rels = dict(trap.relations)
    rels.update({f"S{i}": r for i, (_n, r) in enumerate(binary.relations.items(), 1)})
    rels.update({f"F{i}": r for i, (_n, r) in enumerate(fork.relations.items(), 1)})
    return rels


WORKLOAD = (
    "Q(A,B,C,D) :- R1(A,B), R2(B,C), R3(C,D)",
    "Q(A,B,C) :- S1(A,B), S2(B,C)",
    "Q(A,B,C,D,E) :- F1(A,B), F2(B,C), F3(C,D), F4(C,E)",
    "Q(B; count) :- R1(A,B), R2(B,C), R3(C,D)",
)


def _payload(res):
    if res.metrics.kind == "join":
        return {"attrs": res.relation.attrs, "parts": res.relation.parts}
    return {
        "scalar": res.scalar,
        "rows": None if res.relation is None else list(res.relation.rows),
        "annotations": (
            None if res.relation is None
            else list(res.relation.annotations or ())
        ),
    }


def _engine(relations: dict, backend: str, **kwargs) -> Engine:
    engine = Engine(p=P, backend=backend, result_cache=False, **kwargs)
    for name, rel in relations.items():
        engine.register(rel, name=name)
    return engine


def _warm_pass(engine: Engine, reps: int):
    """Best warm-pass wall time + per-pass backend requests (constant)."""
    best = float("inf")
    requests = None
    results = None
    for _ in range(reps):
        t0 = time.perf_counter()
        results = [engine.execute(text) for text in WORKLOAD]
        best = min(best, time.perf_counter() - t0)
        reqs = sum(r.metrics.backend_requests for r in results)
        assert requests is None or requests == reqs  # deterministic schedule
        requests = reqs
    return best, requests, results


def _bench_backend(backend: str, quick: bool, reps: int) -> dict:
    relations = _base_relations(quick)
    fused = _engine(relations, backend)
    unfused = _engine(relations, backend, fusion=False)
    redrive = _engine(relations, backend, plan_replay=False)

    t0 = time.perf_counter()
    cold = [fused.execute(text) for text in WORKLOAD]
    cold_seconds = time.perf_counter() - t0
    ref = [(_payload(r), r.report.as_dict()) for r in cold]
    cold_requests = sum(r.metrics.backend_requests for r in cold)

    for other in (unfused, redrive):
        for text, (ref_payload, ref_ledger) in zip(WORKLOAD, ref):
            res = other.execute(text)
            if _payload(res) != ref_payload or res.report.as_dict() != ref_ledger:
                raise AssertionError(f"cold divergence on {text!r}")

    fused_s, fused_req, fused_res = _warm_pass(fused, reps)
    unfused_s, unfused_req, unfused_res = _warm_pass(unfused, reps)
    redrive_s, redrive_req, redrive_res = _warm_pass(redrive, reps)

    assert all(r.metrics.plan_replayed for r in fused_res)
    assert all(r.metrics.plan_replayed for r in unfused_res)
    assert not any(r.metrics.plan_replayed for r in redrive_res)

    # ---- parity gate: every warm mode bit-identical to the cold run
    for mode, results in (
        ("fused", fused_res), ("unfused", unfused_res), ("redrive", redrive_res)
    ):
        for text, res, (ref_payload, ref_ledger) in zip(WORKLOAD, results, ref):
            if _payload(res) != ref_payload:
                raise AssertionError(f"{mode} outputs diverge on {text!r}")
            if res.report.as_dict() != ref_ledger:
                raise AssertionError(f"{mode} ledger diverges on {text!r}")

    map_ops = sum(r.metrics.map_ops for r in fused_res)
    groups = sum(r.metrics.fused_groups for r in fused_res)
    row = {
        "backend": backend,
        "p": P,
        "queries": len(WORKLOAD),
        "cold_seconds": round(cold_seconds, 4),
        "cold_requests": cold_requests,
        "fused_warm_seconds": round(fused_s, 4),
        "unfused_warm_seconds": round(unfused_s, 4),
        "redrive_warm_seconds": round(redrive_s, 4),
        "fused_requests_per_pass": fused_req,
        "unfused_requests_per_pass": unfused_req,
        "redrive_requests_per_pass": redrive_req,
        "map_ops_per_pass": map_ops,
        "fusion_groups_per_pass": groups,
        "fusion_ratio": round(map_ops / groups, 2) if groups else None,
        "request_reduction_vs_unfused": (
            round(unfused_req / fused_req, 2) if fused_req else None
        ),
        "request_reduction_vs_redrive": (
            round(redrive_req / fused_req, 2) if fused_req else None
        ),
        "replay_speedup_vs_redrive": (
            round(redrive_s / fused_s, 3) if fused_s else None
        ),
        "parity_verified": True,
    }
    print(
        f"{backend:13s} warm requests/pass: fused {fused_req:3d} vs unfused "
        f"{unfused_req:3d} vs re-drive {redrive_req:3d}  "
        f"({row['request_reduction_vs_redrive']}x fewer than baseline)  "
        f"warm wall: fused {fused_s:6.3f}s, re-drive {redrive_s:6.3f}s  "
        f"parity ok"
    )
    return row


def bench(quick: bool = False, backends: tuple[str, ...] = ()) -> dict:
    reps = 2 if quick else 4
    backends = backends or ("serial", "multiprocess")
    results = [_bench_backend(b, quick, reps) for b in backends]
    shutdown_backends()
    return {
        "p": P,
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "workload": list(WORKLOAD),
        "note": (
            "Warm executions with the result cache off: fused/unfused "
            "replay the traced physical plan through Executor/run_ops "
            "(fusion on/off); re-drive is the pre-plan baseline "
            "(plan_replay=False) re-running the algorithms' Python "
            "control flow with one map_parts request per primitive step. "
            "Outputs and full LoadReports are bit-identical across all "
            "modes by the parity gate; requests are backend round-trips "
            "(Backend.requests deltas)."
        ),
        "backends": results,
    }


def main(argv: list[str]) -> None:
    quick = "--quick" in argv
    check = "--check" in argv
    backends: tuple[str, ...] = ()
    if "--backend" in argv:
        backends = (argv[argv.index("--backend") + 1],)
        argv = [a for i, a in enumerate(argv)
                if a != "--backend" and argv[i - 1] != "--backend"]
    paths = [a for a in argv if not a.startswith("-")]
    out_path = (
        Path(paths[0]) if paths
        else Path(__file__).parent.parent / "BENCH_plan.json"
    )
    data = finish_payload(bench(quick=quick, backends=backends))
    out_path.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {out_path}")
    if check:
        bad = [
            b for b in data["backends"]
            if not (
                b["fused_requests_per_pass"] < b["unfused_requests_per_pass"]
                and b["fused_requests_per_pass"] < b["redrive_requests_per_pass"]
            )
        ]
        if bad:
            print(
                "FAIL: fused warm path did not reduce backend round-trips on "
                + ", ".join(b["backend"] for b in bad)
            )
            raise SystemExit(1)
        print(
            "check ok: parity gates passed, fused warm path issues fewer "
            "backend round-trips than unfused replay and the re-drive "
            "baseline"
        )


if __name__ == "__main__":
    main(sys.argv[1:])
