"""EXP-T5 — Theorem 5: the line-3 output-optimal algorithm's OUT sweep.

Sweeps OUT at fixed IN and reports the measured loads of the Section 4.2
algorithm vs the Yannakakis baseline against their bounds
(IN/p + sqrt(IN*OUT)/p vs IN/p + OUT/p).  Shape targets: the new
algorithm's load grows like sqrt(OUT), Yannakakis' like OUT, and the gap
widens as the paper's O(sqrt(OUT/IN)) factor predicts.
"""

from __future__ import annotations

import pytest

from _common import print_table, run_join
from repro.data.generators import line_trap_instance
from repro.theory.bounds import theorem5_bound, yannakakis_bound

P = 8
IN_SIZE = 3000
OUT_SWEEP = [6000, 24000, 96000, 180000]


def _sweep():
    rows = []
    for out_target in OUT_SWEEP:
        inst = line_trap_instance(3, IN_SIZE, out_target, doubled=True)
        out = inst.output_size()
        new = run_join(inst.query, inst, P, "line3")
        yan = run_join(inst.query, inst, P, "yannakakis")
        rows.append(
            [
                out,
                new["load"],
                theorem5_bound(inst.input_size, out, P),
                yan["load"],
                yannakakis_bound(inst.input_size, out, P),
                yan["load"] / max(1, new["load"]),
            ]
        )
    return rows


@pytest.mark.benchmark(group="thm5")
def test_thm5_out_sweep(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_table(
        f"Theorem 5: line-3 load vs OUT (IN~{2 * IN_SIZE}, p={P})",
        ["OUT", "new load", "Thm5 bound", "Yan load", "Yan bound", "Yan/new"],
        rows,
    )
    # Shape 1: the new algorithm tracks its sqrt bound within a constant.
    for out, new_load, t5, _ylo, _yb, _ratio in rows:
        assert new_load <= 25 * t5
    # Shape 2: the win over Yannakakis grows with OUT.
    ratios = [r[-1] for r in rows]
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 1.5
    # Shape 3: sublinear growth in OUT — quadrupling OUT should grow the
    # new algorithm's load by clearly less than 4x (sqrt-like).
    growth = rows[-1][1] / max(1, rows[0][1])
    out_growth = rows[-1][0] / rows[0][0]
    assert growth < 0.6 * out_growth
