"""Serving benchmark: warm prepared-statement engine vs cold one-shot calls.

A mixed 4-query workload (line-3 join, binary join, general acyclic join,
and a GROUP BY COUNT aggregate) is served repeatedly over a fixed set of
registered base relations, two ways:

* **one-shot** — what a stateless caller does per request: parse the
  text, bind the base relations to the query variables (fresh rename),
  and call ``mpc_join`` / ``mpc_join_aggregate`` (fresh cluster, fresh
  distribution, cold substrate caches every time);
* **engine** — a persistent :class:`repro.engine.Engine` session: the
  plan is prepared once, the cluster and the distributed relations stay
  warm, and each request is served from the prepared plan.

Before any timing, every query's outputs *and* full load ledger are
verified bit-identical between the two paths (the script refuses to write
results otherwise).  Reported per backend:

* ``oneshot_seconds`` — best per-pass time of the repeated cold path,
* ``engine_cold_seconds`` — first engine pass (parse + prepare + plan
  pricing included),
* ``engine_replay_seconds`` — best warm pass with the result cache
  disabled: the traced physical plan replays through the op executor
  (ledger re-charged bit-exactly, worker-local compute re-issued in
  fused backend requests — see DESIGN.md 7 and
  ``benchmarks/bench_plan_fusion.py`` for the mode-by-mode breakdown),
* ``engine_warm_seconds`` — best warm pass in the default serving
  configuration: unchanged data versions let the engine replay the
  recorded execution (deterministic simulation ⇒ bit-identical outputs
  and ledger), and the resulting ``warm_speedup``.

Run:  python benchmarks/bench_engine.py [--quick] [--backend NAME] [output.json]
Writes ``BENCH_engine.json`` (repo root by default).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from _common import finish_payload

from repro.core.runner import mpc_join, mpc_join_aggregate
from repro.data.generators import line_trap_instance, random_instance
from repro.data.instance import Instance
from repro.data.relation import Relation
from repro.engine import Engine, parse_query
from repro.mpc import shutdown_backends
from repro.query import catalog
from repro.semiring import COUNT

P = 8


def _base_relations(quick: bool) -> dict[str, "object"]:
    """The serving session's registered relations (three sub-schemas)."""
    n = 1200 if quick else 6000
    trap = line_trap_instance(3, n, 2 * n, doubled=True)
    binary = random_instance(catalog.binary_join(), n, max(8, n // 40), seed=7)
    fork = random_instance(catalog.fork_join(), n, max(8, n // 8), seed=17)
    rels = dict(trap.relations)
    rels.update({f"S{i}": r for i, (_n, r) in enumerate(binary.relations.items(), 1)})
    rels.update({f"F{i}": r for i, (_n, r) in enumerate(fork.relations.items(), 1)})
    return rels


WORKLOAD = (
    "Q(A,B,C,D) :- R1(A,B), R2(B,C), R3(C,D)",
    "Q(A,B,C) :- S1(A,B), S2(B,C)",
    "Q(A,B,C,D,E) :- F1(A,B), F2(B,C), F3(C,D), F4(C,E)",
    "Q(B; count) :- R1(A,B), R2(B,C), R3(C,D)",
)


def _one_shot(relations: dict, text: str, algorithm: str, plan, backend: str):
    """One cold request: parse + fresh positional bind + one-shot call."""
    parsed = parse_query(text)
    instance = Instance(
        parsed.query,
        {
            b.edge: Relation(
                b.edge, b.variables, relations[b.relation].rows,
                relations[b.relation].annotations,
                relations[b.relation].semiring,
            )
            for b in parsed.bindings
        },
    )
    if parsed.kind == "join":
        res = mpc_join(
            parsed.query, instance, p=P, algorithm=algorithm,
            plan=plan, backend=backend,
        )
        payload = {"attrs": res.relation.attrs, "parts": res.relation.parts}
        return payload, res.report
    annotated = instance.with_uniform_annotations(COUNT)
    res = mpc_join_aggregate(
        parsed.query, parsed.output_attrs, annotated, COUNT, p=P,
        algorithm=algorithm, backend=backend,
    )
    payload = {
        "scalar": res.scalar,
        "rows": None if res.relation is None else list(res.relation.rows),
        "annotations": (
            None if res.relation is None
            else list(res.relation.annotations or ())
        ),
    }
    return payload, res.report


def _engine_payload(res):
    if res.metrics.kind == "join":
        return {"attrs": res.relation.attrs, "parts": res.relation.parts}
    return {
        "scalar": res.scalar,
        "rows": None if res.relation is None else list(res.relation.rows),
        "annotations": (
            None if res.relation is None
            else list(res.relation.annotations or ())
        ),
    }


def _bench_backend(backend: str, quick: bool, reps: int) -> dict:
    relations = _base_relations(quick)
    engine = Engine(p=P, backend=backend)
    for name, rel in relations.items():
        engine.register(rel, name=name)

    # ---- engine cold pass (prepare + plan pricing + first execution)
    t0 = time.perf_counter()
    first = [engine.execute(text) for text in WORKLOAD]
    engine_cold = time.perf_counter() - t0

    # ---- parity gate: outputs and full ledger vs the one-shot path
    for text, res in zip(WORKLOAD, first):
        ref_payload, ref_report = _one_shot(
            relations, text, res.prepared.algorithm, res.prepared.plan, backend
        )
        if _engine_payload(res) != ref_payload:
            raise AssertionError(f"engine outputs diverge on {text!r}")
        if res.report.as_dict() != ref_report.as_dict():
            raise AssertionError(f"engine ledger diverges on {text!r}")

    # ---- warm replay passes (result cache off: the traced physical
    #      plan replays through the Executor against the warm backend)
    engine.result_cache = False
    engine_replay = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        results = [engine.execute(text) for text in WORKLOAD]
        engine_replay = min(engine_replay, time.perf_counter() - t0)
    assert all(r.metrics.plan_reused for r in results)

    # ---- warm serving passes (default config: recorded executions replay
    #      while data versions are unchanged)
    engine.result_cache = True
    engine_warm = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        results = [engine.execute(text) for text in WORKLOAD]
        engine_warm = min(engine_warm, time.perf_counter() - t0)
    assert all(r.metrics.result_cached for r in results)

    # ---- repeated cold one-shot passes (every request re-parses,
    #      re-binds, re-distributes, and rebuilds every cache)
    oneshot = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        for text, res in zip(WORKLOAD, first):
            _one_shot(
                relations, text, res.prepared.algorithm,
                res.prepared.plan, backend,
            )
        oneshot = min(oneshot, time.perf_counter() - t0)

    stats = engine.stats()
    return {
        "backend": backend,
        "p": P,
        "queries": len(WORKLOAD),
        "oneshot_seconds": round(oneshot, 4),
        "engine_cold_seconds": round(engine_cold, 4),
        "engine_replay_seconds": round(engine_replay, 4),
        "engine_warm_seconds": round(engine_warm, 4),
        "replay_speedup": round(oneshot / engine_replay, 3),
        "warm_speedup": round(oneshot / engine_warm, 3),
        "engine_wins_warm": engine_warm < oneshot,
        "parity_verified": True,
        "plan_hits": stats.cache_hits,
        "result_hits": stats.result_hits,
        "plan_gaps": stats.plan_gaps(),
        "per_query_load": {
            m.text: m.load for m in stats.per_query[: len(WORKLOAD)]
        },
    }


def bench(quick: bool = False, backends: tuple[str, ...] = ()) -> dict:
    reps = 2 if quick else 4
    backends = backends or ("serial", "multiprocess")
    results = []
    for backend in backends:
        row = _bench_backend(backend, quick, reps)
        results.append(row)
        print(
            f"{backend:13s} oneshot {row['oneshot_seconds']:7.3f}s  replay "
            f"{row['engine_replay_seconds']:7.3f}s ({row['replay_speedup']:4.2f}x)"
            f"  warm {row['engine_warm_seconds']:8.4f}s "
            f"({row['warm_speedup']:.0f}x)  cold {row['engine_cold_seconds']:5.2f}s"
            f"  parity ok"
        )
    shutdown_backends()
    return {
        "p": P,
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "workload": list(WORKLOAD),
        "note": (
            "oneshot = best repeated cold pass (fresh bind + cluster + "
            "redistribution per request); engine replay = traced physical "
            "plan replayed through the op executor on the persistent "
            "session (ledger re-charged bit-exactly, fused backend "
            "requests); engine warm = default serving "
            "config, where unchanged data versions let the deterministic "
            "simulation's recorded execution replay bit-identically.  "
            "Outputs and full LoadReports are verified against the "
            "one-shot entry points before timing."
        ),
        "backends": results,
    }


def main(argv: list[str]) -> None:
    quick = "--quick" in argv
    backends: tuple[str, ...] = ()
    if "--backend" in argv:
        backends = (argv[argv.index("--backend") + 1],)
        argv = [a for i, a in enumerate(argv)
                if a != "--backend" and argv[i - 1] != "--backend"]
    paths = [a for a in argv if not a.startswith("-")]
    out_path = (
        Path(paths[0]) if paths
        else Path(__file__).parent.parent / "BENCH_engine.json"
    )
    data = finish_payload(bench(quick=quick, backends=backends))
    out_path.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {out_path}")
    losses = [b for b in data["backends"] if not b["engine_wins_warm"]]
    if losses:
        print(
            "WARNING: engine warm path lost on "
            + ", ".join(b["backend"] for b in losses)
        )


if __name__ == "__main__":
    main(sys.argv[1:])
