"""Serving-tier benchmark: front door (N replicas) vs one engine.

A seeded heavy-traffic deck — the mixed workload of
``benchmarks/bench_engine.py`` drawn ~uniformly at random — is served
two ways over the same registered base relations:

* **single engine** — one persistent :class:`repro.engine.Engine`
  serving the deck request-by-request (the replicas=1 baseline);
* **front door** — a :class:`repro.serve.Frontdoor` over N engine
  replicas, each with its *own* backend worker pool: canonical-form
  routing, micro-batching, and cross-replica plan shipping.

Both sides run with the result cache off, so every warm request replays
its traced physical plan against the backend — real per-request work
whose backend I/O the replicas can overlap.  Before any timing, two
gates must pass (the script refuses to write results otherwise):

* **parity** — every front-door response (outputs, scalar, full
  LoadReport ledger) is bit-identical to the single engine's;
* **zero re-traces** — each distinct query traces cold exactly once
  tier-wide, ships to every peer replica (``plans_shipped`` =
  distinct × (N−1), no rejections), and every post-warmup request is a
  plan replay on whichever replica it routed to.

Reported per side: throughput (requests/s, best round) and request
latency percentiles (p50/p95/p99).  With ``--check`` the run fails
unless the front door reaches 1.3x the single engine's throughput —
gated only when the host has more than one CPU (replica overlap is
backend-process parallelism; on a single-CPU host the ratio is recorded
but not enforced).

Run:  python benchmarks/bench_serve.py [--quick] [--check]
          [--backend NAME] [--replicas N] [output.json]
Writes ``BENCH_serve.json`` (repo root by default).
"""

from __future__ import annotations

import json
import os
import random
import sys
import time
from pathlib import Path

from _common import finish_payload, latency_summary

from repro.engine import Engine
from repro.mpc import shutdown_backends
from repro.serve import Frontdoor

from bench_engine import WORKLOAD, _base_relations, _engine_payload

P = 8


def _deck(quick: bool, seed: int = 42) -> list[str]:
    """The heavy-traffic request deck: a seeded draw over the workload."""
    requests = 80 if quick else 320
    rng = random.Random(seed)
    return [rng.choice(WORKLOAD) for _ in range(requests)]


def _wait_for(predicate, timeout: float = 300.0) -> bool:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            return False
        time.sleep(0.01)
    return True


def _verify_gates(door: Frontdoor, expected: dict, deck: list[str]) -> int:
    """Parity + zero-re-trace gates; returns plans_shipped.

    Leaves the whole tier warm, so the timed rounds that follow measure
    steady-state serving.
    """
    distinct = list(WORKLOAD)
    first = [f.result() for f in door.submit_many(distinct)]
    for text, res in zip(distinct, first):
        if not res.ok:
            raise AssertionError(f"front door failed {text!r}: {res.error}")
        if res.metrics.plan_replayed:
            raise AssertionError(f"first execution of {text!r} was not cold")

    want = len(distinct) * (door.replicas - 1)
    if not _wait_for(lambda: door.stats().plans_shipped >= want):
        s = door.stats()
        raise AssertionError(
            f"plan shipping stalled: {s.plans_shipped}/{want} shipped, "
            f"{s.plans_rejected} rejected"
        )
    s = door.stats()
    if s.plans_rejected:
        raise AssertionError(f"{s.plans_rejected} plan installs rejected")
    installed = sum(e.stats().plans_installed for e in door.engines)
    if installed != want:
        raise AssertionError(f"installed {installed} plans, wanted {want}")

    # One untimed pass of the full deck: parity on every response, and
    # zero re-traces anywhere in the warm tier.
    results = [f.result() for f in door.submit_many(deck)]
    for text, res in zip(deck, results):
        if not res.ok:
            raise AssertionError(f"front door failed {text!r}: {res.error}")
        if not res.metrics.plan_replayed:
            raise AssertionError(f"warm tier re-traced {text!r}")
        want_res = expected[text]
        if _engine_payload(res) != _engine_payload(want_res):
            raise AssertionError(f"front-door outputs diverge on {text!r}")
        if res.report.as_dict() != want_res.report.as_dict():
            raise AssertionError(f"front-door ledger diverges on {text!r}")
    if door.stats().plans_shipped != want:
        raise AssertionError("warm tier re-shipped an unchanged plan")
    return want


def _time_engine(engine: Engine, deck: list[str], rounds: int) -> dict:
    best_wall, samples = float("inf"), []
    for _ in range(rounds):
        round_samples = []
        t0 = time.perf_counter()
        for text in deck:
            t1 = time.perf_counter()
            engine.execute(text)
            round_samples.append(time.perf_counter() - t1)
        wall = time.perf_counter() - t0
        if wall < best_wall:
            best_wall, samples = wall, round_samples
    return {
        "wall_seconds": round(best_wall, 4),
        "throughput_rps": round(len(deck) / best_wall, 2),
        "latency": latency_summary(samples),
    }


def _time_frontdoor(door: Frontdoor, deck: list[str], rounds: int) -> dict:
    best_wall, samples = float("inf"), []
    for _ in range(rounds):
        round_samples: list[float] = []
        futures = []
        t0 = time.perf_counter()
        for text in deck:
            t1 = time.perf_counter()
            fut = door.submit(text)
            fut.add_done_callback(
                lambda _f, t1=t1: round_samples.append(
                    time.perf_counter() - t1
                )
            )
            futures.append(fut)
        for fut in futures:
            fut.result()
        wall = time.perf_counter() - t0
        if wall < best_wall:
            best_wall, samples = wall, round_samples
    return {
        "wall_seconds": round(best_wall, 4),
        "throughput_rps": round(len(deck) / best_wall, 2),
        "latency": latency_summary(samples),
    }


def bench(
    quick: bool = False,
    check: bool = False,
    backend: str = "multiprocess",
    replicas: int = 3,
) -> dict:
    relations = _base_relations(quick)
    deck = _deck(quick)
    rounds = 2 if quick else 3

    engine = Engine(p=P, backend=backend, result_cache=False)
    for name, rel in relations.items():
        engine.register(rel, name=name)
    expected = {text: engine.execute(text) for text in WORKLOAD}

    # shed_after covers the whole deck: this is a closed-loop throughput
    # benchmark, not an overload test — nothing may shed.
    with Frontdoor(
        p=P, replicas=replicas, backend=backend, result_cache=False,
        shed_after=len(deck),
    ) as door:
        for name, rel in relations.items():
            door.register(rel, name=name)
        plans_shipped = _verify_gates(door, expected, deck)
        print(
            f"gates: parity ok on {len(deck)} requests, "
            f"{plans_shipped} plans shipped, zero re-traces"
        )
        single = _time_engine(engine, deck, rounds)
        tiered = _time_frontdoor(door, deck, rounds)
        door_stats = door.stats().as_dict()

    ratio = round(tiered["throughput_rps"] / single["throughput_rps"], 3)
    gated = check and (os.cpu_count() or 1) > 1
    for name, side in (("single", single), ("frontdoor", tiered)):
        lat = side["latency"]
        print(
            f"{name:10s} {side['throughput_rps']:8.1f} req/s  "
            f"p50 {lat['p50'] * 1e3:6.2f}ms  p95 {lat['p95'] * 1e3:6.2f}ms  "
            f"p99 {lat['p99'] * 1e3:6.2f}ms"
        )
    print(f"throughput ratio {ratio:.2f}x ({'gated' if gated else 'ungated'})")
    if gated and ratio < 1.3:
        raise AssertionError(
            f"front door reached only {ratio:.2f}x the single engine "
            f"(threshold 1.3x, cpu_count={os.cpu_count()})"
        )

    return {
        "p": P,
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "backend": backend,
        "replicas": replicas,
        "requests": len(deck),
        "distinct_queries": len(WORKLOAD),
        "parity_verified": True,
        "zero_retrace_verified": True,
        "plans_shipped": plans_shipped,
        "single_engine": single,
        "frontdoor": tiered,
        "frontdoor_stats": door_stats,
        "throughput_ratio": ratio,
        "ratio_gated": gated,
        "note": (
            "A seeded mixed deck served by one warm engine vs a "
            "front door over N engine replicas (own backend pools, "
            "canonical-form routing, micro-batching, plan shipping); "
            "result cache off on both sides so every warm request "
            "replays its traced plan against the backend.  Outputs and "
            "full LoadReports verified bit-identical, and zero "
            "re-traces verified tier-wide, before timing.  The 1.3x "
            "throughput gate applies under --check on multi-CPU hosts "
            "only; the ratio is always recorded."
        ),
    }


def main(argv: list[str]) -> None:
    quick = "--quick" in argv
    check = "--check" in argv
    backend = "multiprocess"
    if "--backend" in argv:
        backend = argv[argv.index("--backend") + 1]
    replicas = 3
    if "--replicas" in argv:
        replicas = int(argv[argv.index("--replicas") + 1])
    skip = {"--backend", "--replicas"}
    paths = [
        a for i, a in enumerate(argv)
        if not a.startswith("-") and (i == 0 or argv[i - 1] not in skip)
    ]
    out_path = (
        Path(paths[0]) if paths
        else Path(__file__).parent.parent / "BENCH_serve.json"
    )
    data = finish_payload(
        bench(quick=quick, check=check, backend=backend, replicas=replicas)
    )
    shutdown_backends()
    out_path.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main(sys.argv[1:])
