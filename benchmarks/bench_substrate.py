"""Substrate wall-clock benchmark: cached vs cache-bypassed primitives.

Measures the cross-primitive performance layer of :mod:`repro.mpc.substrate`
(key-encoding cache, sorted-run cache, fused primitives) against the same
code with every cache bypassed, on two workloads:

* ``repeated_primitives`` — the paper's Section-2 primitive sequence that
  the acyclic/Theorem-7 solver issues over and over on the same relations
  (degree attachment, degree tables, predecessor lookups, per-key
  numbering, semi-joins) at p=8;
* ``acyclic_join_p8`` — the full output-optimal acyclic join end-to-end on
  a ``bench_thm7_acyclic``-style line-trap workload.

Both paths must produce identical outputs and identical ledger numbers
(load, step-max, steps) — the script refuses to write results otherwise;
the wall-clock ratio is the only thing allowed to differ.

Run:  python benchmarks/bench_substrate.py [--quick] [output.json]
Writes ``BENCH_substrate.json`` (repo root by default).
"""

from __future__ import annotations

import json
import random
import sys
import time
from pathlib import Path

from _common import finish_payload

from repro.core.runner import mpc_join
from repro.data.generators import line_trap_instance
from repro.data.relation import Relation
from repro.mpc import Cluster, cache_disabled, distribute_relation
from repro.mpc.primitives import (
    attach_degrees,
    count_by_key,
    number_rows,
    search_rows,
    semi_join,
)

P = 8


def _repeated_primitives(n: int, reps: int):
    rng = random.Random(7)
    rows = [(rng.randrange(max(2, n // 15)), rng.randrange(max(2, n // 60)))
            for _ in range(n)]
    keys = max(2, n // 60)
    rel_ram = Relation("R", ("A", "B"), rows)
    flt_ram = Relation("F", ("B", "C"), [(b, 0) for b in range(0, keys, 2)])

    def run():
        cl = Cluster(P)
        g = cl.root_group()
        rel = distribute_relation(rel_ram, g)
        flt = distribute_relation(flt_ram, g)
        outputs = []
        for rep in range(reps):
            outputs.append(attach_degrees(g, rel, ("B",), f"deg{rep}"))
            table = count_by_key(g, rel, ("B",), f"cnt{rep}")
            outputs.append(table)
            outputs.append(search_rows(g, rel, ("B",), table, f"sr{rep}"))
            outputs.append(number_rows(g, rel, ("A",), f"num{rep}"))
            outputs.append(semi_join(g, rel, flt, f"sj{rep}").parts)
        return outputs, cl.snapshot()

    return run


def _acyclic_join(n: int, out_target: int):
    inst = line_trap_instance(4, n, out_target, doubled=True)

    def run():
        res = mpc_join(inst.query, inst, p=P, algorithm="acyclic")
        return (res.relation.attrs, res.relation.parts), res.report

    return run


def _time_both(run, timing_reps: int):
    """Best-of-N wall clock for the cached and bypassed paths."""
    cached_s = bypassed_s = float("inf")
    out_c = rep_c = out_u = rep_u = None
    for _ in range(timing_reps):
        t0 = time.perf_counter()
        out_c, rep_c = run()
        cached_s = min(cached_s, time.perf_counter() - t0)
        with cache_disabled():
            t0 = time.perf_counter()
            out_u, rep_u = run()
            bypassed_s = min(bypassed_s, time.perf_counter() - t0)
    return cached_s, bypassed_s, (out_c, rep_c), (out_u, rep_u)


def bench(quick: bool = False) -> dict:
    if quick:
        workloads = {
            "repeated_primitives": (_repeated_primitives(6000, 4), 2),
            "acyclic_join_p8": (_acyclic_join(1200, 8000), 2),
        }
    else:
        workloads = {
            "repeated_primitives": (_repeated_primitives(30000, 6), 3),
            "acyclic_join_p8": (_acyclic_join(4000, 64000), 3),
        }

    results = []
    for name, (run, timing_reps) in workloads.items():
        cached_s, bypassed_s, (out_c, rep_c), (out_u, rep_u) = _time_both(
            run, timing_reps
        )
        ledger_c = {
            "load": rep_c.load, "step_max": rep_c.max_step_load,
            "steps": rep_c.steps,
        }
        ledger_u = {
            "load": rep_u.load, "step_max": rep_u.max_step_load,
            "steps": rep_u.steps,
        }
        ledger_equal = (
            ledger_c == ledger_u
            and rep_c.totals == rep_u.totals
            and rep_c.by_label == rep_u.by_label
        )
        outputs_equal = out_c == out_u
        if not (ledger_equal and outputs_equal):
            raise AssertionError(
                f"substrate cache changed behaviour on {name!r}: "
                f"ledger_equal={ledger_equal} outputs_equal={outputs_equal}"
            )
        results.append(
            {
                "workload": name,
                "p": P,
                "cached_seconds": round(cached_s, 4),
                "bypassed_seconds": round(bypassed_s, 4),
                "speedup": round(bypassed_s / cached_s, 3),
                "ledger": ledger_c,
                "ledger_equal": ledger_equal,
                "outputs_equal": outputs_equal,
            }
        )
        print(
            f"{name:22s} cached {cached_s:7.3f}s  bypassed {bypassed_s:7.3f}s"
            f"  speedup {bypassed_s / cached_s:5.2f}x  ledger/outputs ok"
        )
    return {
        "p": P,
        "quick": quick,
        "workloads": results,
        "note": (
            "Cached vs bypassed substrate runs; ledger/outputs asserted equal "
            "before any speedup is reported."
        ),
    }


def main(argv: list[str]) -> None:
    quick = "--quick" in argv
    paths = [a for a in argv if not a.startswith("-")]
    out_path = Path(paths[0]) if paths else Path(__file__).parent.parent / "BENCH_substrate.json"
    data = finish_payload(bench(quick=quick))
    out_path.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {out_path}")
    slow = [w for w in data["workloads"]
            if w["workload"] == "repeated_primitives" and w["speedup"] < 2.0]
    if slow:
        print("WARNING: repeated-primitive speedup below the 2x target", slow)


if __name__ == "__main__":
    main(sys.argv[1:])
