"""EXP-T11 — Theorem 11: the triangle join's output-sensitive lower bound.

On the Figure 6 random instances:

1. The J(L) counting core: empirical load needed before p * J(L) >= OUT,
   against the Theorem 11 formula min(IN/p + OUT/(p log IN), IN/p^{2/3}).
2. The worst-case-optimal triangle algorithm's measured load is flat in
   OUT and within a constant of IN/p^{2/3} — output-optimal once
   OUT >= IN * p^{1/3} (the paper's remark 1).
3. The separation from acyclic joins: the triangle lower bound exceeds the
   acyclic upper bound sqrt(IN*OUT)/p by ~sqrt(OUT/IN) for mid-range OUT
   (the paper's remark 2).
"""

from __future__ import annotations

import math

import pytest

from _common import print_table, run_join
from repro.data.hard_instances import triangle_random_hard
from repro.theory.bounds import worst_case_triangle_bound
from repro.theory.lower_bounds import (
    estimate_j_triangle,
    min_load_from_j,
    triangle_lower_bound,
)

P = 8
IN_SIZE = 6000


def _counting():
    rows = []
    for out_mult in (2, 8, 14):
        inst = triangle_random_hard(IN_SIZE, out_mult * IN_SIZE, seed=31)
        from repro.ram.joins import multi_join

        out = len(multi_join([inst[n] for n in inst.query.edge_names]))
        lb = triangle_lower_bound(inst.input_size, out, P)
        need = min_load_from_j(
            out, P,
            lambda load: estimate_j_triangle(inst, load, seed=5, trials=8),
            hi=inst.input_size,
        )
        rows.append([inst.input_size, out, lb, need])
    return rows


def _upper():
    rows = []
    for out_mult in (2, 8, 14):
        inst = triangle_random_hard(IN_SIZE, out_mult * IN_SIZE, seed=32)
        m = run_join(inst.query, inst, P, "wc-triangle")
        wc = worst_case_triangle_bound(inst.input_size, P)
        lb = triangle_lower_bound(inst.input_size, m["out"], P)
        rows.append([m["out"], m["load"], wc, m["load"] / wc, lb])
    return rows


def _separation_formula():
    """Remark 2: in IN <= OUT <= IN*p^{1/3} the triangle needs Omega~(OUT/p)
    while acyclic joins achieve O(sqrt(IN*OUT)/p).  The Omega~ suppresses
    the log factor, so we report the polylog-free output-sensitive terms:
    their ratio is the paper's sqrt(OUT/IN) separation."""
    import math

    in_size, p = 10**6, 512  # p^{1/3} = 8
    rows = []
    for mult in (2, 4, 8):
        out = mult * in_size
        cyclic_term = out / p  # Omega~(OUT/p), log suppressed
        acyclic_term = math.sqrt(in_size * out) / p
        rows.append(
            [out, cyclic_term, acyclic_term, cyclic_term / acyclic_term]
        )
    return rows


@pytest.mark.benchmark(group="thm11")
def test_thm11_counting_argument(benchmark):
    rows = benchmark.pedantic(_counting, rounds=1, iterations=1)
    print_table(
        f"Theorem 11 counting core (p={P})",
        ["IN", "OUT", "Thm11 formula", "empirical L*"],
        rows,
    )
    for _in, _out, lb, need in rows:
        assert need >= 0.2 * lb


@pytest.mark.benchmark(group="thm11")
def test_thm11_worst_case_optimality(benchmark):
    rows = benchmark.pedantic(_upper, rounds=1, iterations=1)
    print_table(
        f"Theorem 11: worst-case algorithm vs bounds (p={P})",
        ["OUT", "wc load", "IN/p^(2/3)", "ratio", "Thm11 LB"],
        rows,
    )
    loads = [r[1] for r in rows]
    # Output-insensitive: flat across a 7x OUT sweep (remark 1: the
    # worst-case algorithm is output-optimal past OUT = IN * p^{1/3}).
    assert max(loads) <= 1.5 * min(loads)
    for row in rows:
        assert row[3] < 10  # within a constant of IN/p^{2/3}


@pytest.mark.benchmark(group="thm11")
def test_thm11_separation_from_acyclic(benchmark):
    rows = benchmark.pedantic(_separation_formula, rounds=1, iterations=1)
    print_table(
        "Theorem 11 remark 2: cyclic vs acyclic output terms (IN=1e6, p=512)",
        ["OUT", "triangle ~OUT/p", "acyclic sqrt(IN*OUT)/p", "separation"],
        rows,
    )
    seps = [r[3] for r in rows]
    # The separation sqrt(OUT/IN) grows with OUT inside the regime.
    assert seps == sorted(seps)
    assert seps[-1] > seps[0] * 1.5
