"""EXP-T3 — Theorem 3: instance-optimality of the r-hierarchical algorithm.

Sweeps skew on hierarchical instances and reports the optimality ratio
load / (IN/p + L_instance).  Shape targets: the Section 3.2 algorithm's
ratio stays flat (O(1)) as skew drives L_instance up, with or without
dangling tuples; the one-round BinHC ratio is larger (its polylog factor).
"""

from __future__ import annotations

import pytest

from _common import print_table, run_join
from repro.data.generators import add_dangling, cartesian_instance, forest_instance
from repro.query import catalog
from repro.theory.bounds import l_instance

P = 8
SKEWS = [1.0, 3.0, 9.0]


def _sweep():
    rows = []
    q = catalog.q2_hierarchical()
    for skew in SKEWS:
        inst = forest_instance(q, 4, skew=skew)
        bound = inst.input_size / P + l_instance(q, inst, P)
        m = run_join(q, inst, P, "rhierarchical")
        b = run_join(q, inst, P, "binhc")
        rows.append(
            ["q2 forest", skew, m["in"], m["out"], bound,
             m["load"], m["load"] / bound, b["load"], b["load"] / bound]
        )
    # Cartesian product corner (Case 2 of the algorithm).
    inst = cartesian_instance([600, 30, 30])
    bound = inst.input_size / P + l_instance(inst.query, inst, P)
    m = run_join(inst.query, inst, P, "rhierarchical")
    b = run_join(inst.query, inst, P, "binhc")
    rows.append(
        ["cartesian3", "-", m["in"], m["out"], bound,
         m["load"], m["load"] / bound, b["load"], b["load"] / bound]
    )
    # Dangling tuples: the multi-round algorithm shrugs them off.
    inst = add_dangling(forest_instance(q, 4, skew=3.0), 300, seed=7)
    bound = inst.input_size / P + l_instance(q, inst, P)
    m = run_join(q, inst, P, "rhierarchical")
    b = run_join(q, inst, P, "binhc")
    rows.append(
        ["q2 + dangling", 3.0, m["in"], m["out"], bound,
         m["load"], m["load"] / bound, b["load"], b["load"] / bound]
    )
    return rows


@pytest.mark.benchmark(group="thm3")
def test_thm3_optimality_ratio(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_table(
        f"Theorem 3: load / (IN/p + L_instance), p={P}",
        ["workload", "skew", "IN", "OUT", "bound",
         "rhier load", "rhier ratio", "binhc load", "binhc ratio"],
        rows,
    )
    ratios = [r[6] for r in rows]
    # O(1) optimality ratio: bounded, and — the instance-optimality point —
    # NOT growing as skew drives L_instance up.  (Small instances carry a
    # fixed coordination overhead, so the ratio *decreases* with size.)
    assert max(ratios) < 45
    skew_ratios = [r[6] for r in rows if r[0] == "q2 forest"]
    assert skew_ratios[-1] <= 1.5 * skew_ratios[0]
